//! The discrete-event execution engine: a thin driver over the
//! cancellable [`EventQueue`] core and the shared [`BcastLedger`]
//! delivery/ack/crash bookkeeping.
//!
//! The engine's job is reduced to wiring: it asks the [`Scheduler`]
//! for a delivery plan per broadcast, schedules the resulting
//! receive/ack events on the queue,
//! and lets the ledger answer the semantic questions (is this node
//! crashed, does a planned mid-broadcast crash interrupt this
//! broadcast). When a sender crashes, its in-flight broadcast's
//! remaining events are *cancelled* on the queue (O(1) tombstones)
//! rather than popped-and-skipped, which keeps the hot loop free of
//! per-event liveness checks.
//!
//! Hot-path state is laid out densely: in-flight broadcasts live in a
//! per-slot table (no hash maps anywhere in the loop), the event-id
//! vectors they carry are pooled across broadcasts, and a shared
//! payload is cloned once per *delivery that actually happens* — the
//! final delivery moves the payload out instead of cloning, and
//! deliveries to crashed receivers never touch it. The queue core
//! itself is selectable per [`SimBuilder::queue_core`]; see
//! [`super::queue`] for the two implementations.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::ids::{NodeId, Slot};
use crate::mac::{Admission, BcastLedger};
use crate::msg::Payload;
use crate::proc::{Context, Decision, Process, Value};
use crate::topo::unreliable::UnreliableOverlay;
use crate::topo::Topology;

use super::crash::{CrashPlan, CrashSpec};
use super::event::{BcastId, EventClass, EventKind};
use super::queue::{EventId, EventQueue, QueueCoreKind};
use super::sched::random::RandomScheduler;
use super::sched::Scheduler;
use super::time::Time;
use super::trace::{Metrics, Trace, TraceEvent};

/// Why an execution stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// Every non-crashed node has decided.
    AllDecided,
    /// No events remain (the algorithm went quiescent without all
    /// nodes deciding).
    Quiescent,
    /// The virtual-time horizon was reached.
    MaxTime,
    /// The event-count safety limit was reached.
    EventLimit,
}

/// Summary of a completed [`Sim::run`].
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Why the run stopped.
    pub outcome: RunOutcome,
    /// Virtual time when it stopped.
    pub end_time: Time,
    /// Per-slot decisions (`None` for undecided or crashed-undecided).
    pub decisions: Vec<Option<Decision>>,
    /// Aggregate counters.
    pub metrics: Metrics,
}

impl RunReport {
    /// `true` when the run ended with every non-crashed node decided.
    pub fn all_decided(&self) -> bool {
        self.outcome == RunOutcome::AllDecided
    }

    /// The distinct decided values, sorted.
    pub fn decided_values(&self) -> Vec<Value> {
        let mut vals: Vec<Value> = self.decisions.iter().flatten().map(|d| d.value).collect();
        vals.sort_unstable();
        vals.dedup();
        vals
    }

    /// The common decided value, if all deciders agree and at least one
    /// node decided.
    pub fn agreement_value(&self) -> Option<Value> {
        match self.decided_values().as_slice() {
            [v] => Some(*v),
            _ => None,
        }
    }

    /// Latest decision time among deciders.
    pub fn max_decision_time(&self) -> Option<Time> {
        self.decisions.iter().flatten().map(|d| d.time).max()
    }

    /// Earliest decision time among deciders.
    pub fn min_decision_time(&self) -> Option<Time> {
        self.decisions.iter().flatten().map(|d| d.time).min()
    }
}

/// Builder for a [`Sim`].
pub struct SimBuilder<P: Process> {
    topo: Topology,
    procs: Vec<P>,
    ids: Vec<NodeId>,
    scheduler: Box<dyn Scheduler>,
    crash_plan: CrashPlan,
    max_time: Time,
    max_events: u64,
    stop_when_all_decided: bool,
    message_id_budget: Option<usize>,
    trace_enabled: bool,
    seed: u64,
    unreliable: Option<(UnreliableOverlay, f64)>,
    queue_core: QueueCoreKind,
}

impl<P: Process> SimBuilder<P> {
    /// Starts a builder, constructing one process per topology slot via
    /// `init`.
    ///
    /// Defaults: ids equal to slot indices, a seeded
    /// [`RandomScheduler`] with `F_ack = 8`, no crashes, a large time
    /// horizon, stop-on-all-decided, no id-budget enforcement, tracing
    /// off, and the queue core named by the `AMACL_QUEUE_CORE`
    /// environment variable (the heap when unset — see
    /// [`QueueCoreKind::from_env`]).
    pub fn new(topo: Topology, mut init: impl FnMut(Slot) -> P) -> Self {
        let n = topo.len();
        let procs: Vec<P> = (0..n).map(|i| init(Slot(i))).collect();
        let ids: Vec<NodeId> = (0..n).map(|i| NodeId(i as u64)).collect();
        Self {
            topo,
            procs,
            ids,
            scheduler: Box::new(RandomScheduler::new(8, 0)),
            crash_plan: CrashPlan::none(),
            max_time: Time(10_000_000),
            max_events: 200_000_000,
            stop_when_all_decided: true,
            message_id_budget: None,
            trace_enabled: false,
            seed: 0,
            unreliable: None,
            queue_core: QueueCoreKind::from_env(),
        }
    }

    /// Sets the message scheduler (the model's adversary).
    pub fn scheduler(mut self, s: impl Scheduler + 'static) -> Self {
        self.scheduler = Box::new(s);
        self
    }

    /// Selects the event-queue core (heap or calendar). The two cores
    /// are observably identical — same traces, same reports — so this
    /// is purely a performance knob; see [`QueueCoreKind`].
    pub fn queue_core(mut self, kind: QueueCoreKind) -> Self {
        self.queue_core = kind;
        self
    }

    /// Assigns custom unique node ids (length must equal `n`).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or duplicate ids.
    pub fn ids(mut self, ids: Vec<NodeId>) -> Self {
        assert_eq!(ids.len(), self.topo.len(), "one id per slot");
        let mut sorted: Vec<_> = ids.iter().map(|i| i.raw()).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "ids must be unique");
        self.ids = ids;
        self
    }

    /// Schedules crash failures.
    pub fn crashes(mut self, plan: CrashPlan) -> Self {
        self.crash_plan = plan;
        self
    }

    /// Sets the virtual-time horizon.
    pub fn max_time(mut self, t: Time) -> Self {
        self.max_time = t;
        self
    }

    /// Sets the event-count safety limit.
    pub fn max_events(mut self, n: u64) -> Self {
        self.max_events = n;
        self
    }

    /// Whether [`Sim::run`] stops as soon as all non-crashed nodes have
    /// decided (default `true`).
    pub fn stop_when_all_decided(mut self, stop: bool) -> Self {
        self.stop_when_all_decided = stop;
        self
    }

    /// Enforces the model's `O(1)`-ids-per-message restriction: any
    /// broadcast whose [`Payload::id_count`] exceeds `budget` panics.
    pub fn message_id_budget(mut self, budget: usize) -> Self {
        self.message_id_budget = Some(budget);
        self
    }

    /// Enables event tracing.
    pub fn trace(mut self, enabled: bool) -> Self {
        self.trace_enabled = enabled;
        self
    }

    /// Seeds per-node randomness and unreliable-overlay sampling.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds an unreliable-link overlay: each broadcast is additionally
    /// delivered over each overlay edge with probability `p`, at an
    /// arbitrary time within the `F_ack` window, without the ack ever
    /// waiting for it (the dual-graph model variant).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn unreliable(mut self, overlay: UnreliableOverlay, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.unreliable = Some((overlay, p));
        self
    }

    /// Builds the simulator (processes have not started yet; the first
    /// call to [`Sim::run`] or [`Sim::run_until`] starts them).
    pub fn build(self) -> Sim<P> {
        let n = self.topo.len();
        let mut ledger = BcastLedger::new(n);
        let mut queue = EventQueue::with_core(self.queue_core);
        let mut undecided = n;
        for spec in self.crash_plan.specs() {
            match *spec {
                CrashSpec::AtTime { slot, time } => {
                    if time == Time::ZERO {
                        ledger.mark_crashed(slot.0);
                        undecided -= 1;
                    } else {
                        queue.push(
                            time,
                            EventClass::Crash as u8,
                            EventKind::Crash { node: slot },
                        );
                    }
                }
                CrashSpec::MidBroadcast {
                    slot,
                    nth_broadcast,
                    delivered,
                } => {
                    ledger.arm_watch(slot.0, nth_broadcast, delivered);
                }
            }
        }
        let rngs: Vec<SmallRng> = (0..n)
            .map(|i| {
                SmallRng::seed_from_u64(
                    self.seed
                        ^ (i as u64)
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add(1),
                )
            })
            .collect();
        let metrics = Metrics::new(n);
        Sim {
            topo: self.topo,
            procs: self.procs,
            ids: self.ids,
            scheduler: self.scheduler,
            queue,
            ledger,
            now: Time::ZERO,
            started: false,
            bcast_seq: 0,
            inflight: (0..n).map(|_| Vec::new()).collect(),
            events_pool: Vec::new(),
            neighbor_scratch: Vec::new(),
            outstanding: vec![None; n],
            decisions: vec![None; n],
            ts_seqs: vec![0; n],
            rngs,
            engine_rng: SmallRng::seed_from_u64(self.seed.wrapping_add(0xA5A5_5A5A)),
            undecided,
            max_time: self.max_time,
            max_events: self.max_events,
            stop_when_all_decided: self.stop_when_all_decided,
            message_id_budget: self.message_id_budget,
            trace: Trace::new(self.trace_enabled),
            metrics,
            unreliable: self.unreliable,
        }
    }
}

/// One in-flight broadcast: its id, the shared payload, a count of
/// still-pending queue events referencing it, and those events' ids
/// (for bulk cancellation when the sender crashes).
struct InFlight<M> {
    bcast: u64,
    msg: M,
    refs: usize,
    events: Vec<EventId>,
}

/// A running (or runnable) simulation.
pub struct Sim<P: Process> {
    topo: Topology,
    procs: Vec<P>,
    ids: Vec<NodeId>,
    scheduler: Box<dyn Scheduler>,
    queue: EventQueue<EventKind>,
    ledger: BcastLedger,
    now: Time,
    started: bool,
    bcast_seq: u64,
    /// In-flight broadcasts, densely indexed by the *sender's* slot.
    /// Each node has at most one outstanding broadcast, so the inner
    /// vector holds one entry in the common case; a second appears
    /// only while an already-acked broadcast still has unreliable-
    /// overlay deliveries pending. Lookups are positional scans of
    /// these tiny vectors — no hashing on the hot path, and nothing
    /// order-sensitive to leak nondeterminism.
    inflight: Vec<Vec<InFlight<P::Msg>>>,
    /// Recycled event-id vectors (the per-broadcast cancellation
    /// lists), so steady-state broadcasting allocates nothing.
    events_pool: Vec<Vec<EventId>>,
    /// Recycled neighbor-list buffer for `start_broadcast`.
    neighbor_scratch: Vec<Slot>,
    outstanding: Vec<Option<BcastId>>,
    decisions: Vec<Option<Decision>>,
    ts_seqs: Vec<u64>,
    rngs: Vec<SmallRng>,
    engine_rng: SmallRng,
    undecided: usize,
    max_time: Time,
    max_events: u64,
    stop_when_all_decided: bool,
    message_id_budget: Option<usize>,
    trace: Trace,
    metrics: Metrics,
    unreliable: Option<(UnreliableOverlay, f64)>,
}

impl<P: Process> Sim<P> {
    /// The topology under simulation.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The id assigned to `slot`.
    pub fn id_of(&self, slot: Slot) -> NodeId {
        self.ids[slot.0]
    }

    /// Immutable access to a process (for state inspection between
    /// [`Sim::run_until`] calls, e.g. indistinguishability checks).
    pub fn process(&self, slot: Slot) -> &P {
        &self.procs[slot.0]
    }

    /// Whether `slot` has crashed.
    pub fn is_crashed(&self, slot: Slot) -> bool {
        self.ledger.is_crashed(slot.0)
    }

    /// Per-slot decisions so far.
    pub fn decisions(&self) -> &[Option<Decision>] {
        &self.decisions
    }

    /// Counters so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The event trace (empty unless enabled at build time).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// `true` when every non-crashed node has decided.
    pub fn all_alive_decided(&self) -> bool {
        self.undecided == 0
    }

    /// Runs to completion and reports.
    pub fn run(&mut self) -> RunReport {
        let outcome = self.run_inner(None);
        RunReport {
            outcome,
            end_time: self.now,
            decisions: self.decisions.clone(),
            metrics: self.metrics.clone(),
        }
    }

    /// Processes all events up to and including virtual time `until`,
    /// ignoring the stop-on-all-decided rule (used for lockstep
    /// inspection of executions).
    pub fn run_until(&mut self, until: Time) -> RunOutcome {
        let saved = self.stop_when_all_decided;
        self.stop_when_all_decided = false;
        let outcome = self.run_inner(Some(until));
        self.stop_when_all_decided = saved;
        if self.now < until {
            self.now = until;
        }
        outcome
    }

    fn run_inner(&mut self, until: Option<Time>) -> RunOutcome {
        let outcome = self.run_loop(until);
        // Queue-core counters are folded into the metrics whenever the
        // loop yields, so reports always carry up-to-date figures.
        self.metrics.queue_pushes = self.queue.scheduled_total();
        self.metrics.queue_cancellations = self.queue.cancelled_total();
        self.metrics.queue_bucket_overflows = self.queue.bucket_overflows();
        outcome
    }

    fn run_loop(&mut self, until: Option<Time>) -> RunOutcome {
        if !self.started {
            self.started = true;
            for i in 0..self.topo.len() {
                if !self.ledger.is_crashed(i) {
                    self.dispatch(Slot(i), |p, ctx| p.on_start(ctx));
                }
            }
        }
        loop {
            if self.stop_when_all_decided && self.undecided == 0 {
                return RunOutcome::AllDecided;
            }
            let Some(next_time) = self.queue.peek_time() else {
                return if self.undecided == 0 {
                    RunOutcome::AllDecided
                } else {
                    RunOutcome::Quiescent
                };
            };
            if let Some(limit) = until {
                if next_time > limit {
                    return RunOutcome::MaxTime;
                }
            }
            if next_time > self.max_time {
                return RunOutcome::MaxTime;
            }
            if self.metrics.events >= self.max_events {
                return RunOutcome::EventLimit;
            }
            let ev = self.queue.pop().expect("peeked");
            self.now = ev.time;
            self.metrics.events += 1;
            match ev.payload {
                EventKind::Crash { node } => self.handle_crash(node),
                EventKind::Receive {
                    to,
                    from,
                    bcast,
                    unreliable,
                } => self.handle_receive(to, from, bcast, unreliable),
                EventKind::Ack { node, bcast } => self.handle_ack(node, bcast),
            }
        }
    }

    fn handle_crash(&mut self, node: Slot) {
        if !self.ledger.mark_crashed(node.0) {
            return;
        }
        self.metrics.crashes += 1;
        self.trace.push(TraceEvent::Crash {
            time: self.now,
            slot: node,
        });
        if self.decisions[node.0].is_none() {
            self.undecided -= 1;
        }
        if let Some(BcastId(b)) = self.outstanding[node.0].take() {
            self.cancel_broadcast(node, b);
        }
    }

    /// Voids a crashed sender's in-flight broadcast: every still-
    /// pending delivery and the ack are cancelled on the queue, so
    /// they simply never fire.
    fn cancel_broadcast(&mut self, sender: Slot, bcast: u64) {
        let list = &mut self.inflight[sender.0];
        if let Some(idx) = list.iter().position(|e| e.bcast == bcast) {
            let entry = list.swap_remove(idx);
            for &id in &entry.events {
                self.queue.cancel(id);
            }
            self.recycle(entry.events);
        }
    }

    /// Returns an event-id vector to the pool for reuse.
    fn recycle(&mut self, mut events: Vec<EventId>) {
        if self.events_pool.len() < self.topo.len() {
            events.clear();
            self.events_pool.push(events);
        }
    }

    fn handle_receive(&mut self, to: Slot, from: Slot, bcast: BcastId, unreliable: bool) {
        // The receiver may have crashed after this delivery was
        // scheduled; the message is silently lost (and never cloned).
        // The lost delivery still consumes its slot in any
        // mid-broadcast crash countdown, so the sender's planned crash
        // fires even when watched deliveries target dead receivers —
        // the contract shared with the threaded ether, whose prefix
        // over all neighbors likewise burns slots on dead receivers
        // (see Admission::PartialThenCrash).
        let to_crashed = self.ledger.is_crashed(to.0);
        let msg = {
            let list = &mut self.inflight[from.0];
            let idx = list
                .iter()
                .position(|e| e.bcast == bcast.0)
                .expect("message for pending delivery");
            let entry = &mut list[idx];
            entry.refs -= 1;
            if entry.refs == 0 {
                // Final reference: move the payload out, no clone.
                let entry = list.swap_remove(idx);
                let msg = (!to_crashed).then_some(entry.msg);
                self.recycle(entry.events);
                msg
            } else if to_crashed {
                None
            } else {
                Some(entry.msg.clone())
            }
        };
        if to_crashed {
            if !unreliable && self.ledger.note_delivery(bcast.0) {
                self.handle_crash(from);
            }
            return;
        }
        let msg = msg.expect("payload for a live receiver");
        self.metrics.deliveries += u64::from(!unreliable);
        self.metrics.unreliable_deliveries += u64::from(unreliable);
        self.trace.push(TraceEvent::Deliver {
            time: self.now,
            from,
            to,
            unreliable,
        });
        self.dispatch(to, |p, ctx| p.on_receive(msg, ctx));
        // Mid-broadcast crash: the sender dies immediately after this
        // delivery; the rest of the broadcast never happens.
        if !unreliable && self.ledger.note_delivery(bcast.0) {
            self.handle_crash(from);
        }
    }

    fn handle_ack(&mut self, node: Slot, bcast: BcastId) {
        let list = &mut self.inflight[node.0];
        if let Some(idx) = list.iter().position(|e| e.bcast == bcast.0) {
            let entry = &mut list[idx];
            entry.refs -= 1;
            if entry.refs == 0 {
                let entry = list.swap_remove(idx);
                self.recycle(entry.events);
            }
        }
        // A crashed sender's ack event is cancelled with its broadcast,
        // so this only fires for live nodes.
        debug_assert!(!self.ledger.is_crashed(node.0), "ack for a crashed node");
        debug_assert_eq!(self.outstanding[node.0], Some(bcast));
        self.outstanding[node.0] = None;
        self.metrics.acks += 1;
        self.trace.push(TraceEvent::Ack {
            time: self.now,
            slot: node,
        });
        self.dispatch(node, |p, ctx| p.on_ack(ctx));
    }

    /// Runs one process callback with a fresh context, then services
    /// any broadcast it requested and records any new decision.
    fn dispatch<F>(&mut self, slot: Slot, f: F)
    where
        F: FnOnce(&mut P, &mut Context<'_, P::Msg>),
    {
        let had_decision = self.decisions[slot.0].is_some();
        let mut outbox: Option<P::Msg> = None;
        {
            let mut ctx = Context {
                id: self.ids[slot.0],
                now: self.now,
                busy: self.outstanding[slot.0].is_some(),
                outbox: &mut outbox,
                decision: &mut self.decisions[slot.0],
                ts_seq: &mut self.ts_seqs[slot.0],
                busy_discards: &mut self.metrics.busy_discards,
                rng: &mut self.rngs[slot.0],
            };
            f(&mut self.procs[slot.0], &mut ctx);
        }
        if let Some(m) = outbox {
            self.start_broadcast(slot, m);
        }
        if !had_decision {
            if let Some(d) = self.decisions[slot.0] {
                self.trace.push(TraceEvent::Decide {
                    time: d.time,
                    slot,
                    value: d.value,
                });
                if !self.ledger.is_crashed(slot.0) {
                    self.undecided -= 1;
                }
            }
        }
    }

    fn start_broadcast(&mut self, slot: Slot, msg: P::Msg) {
        debug_assert!(!self.ledger.is_crashed(slot.0), "crashed node broadcast");
        debug_assert!(self.outstanding[slot.0].is_none(), "double broadcast");
        let ids = msg.id_count();
        if let Some(budget) = self.message_id_budget {
            assert!(
                ids <= budget,
                "message from {} carries {ids} ids, exceeding the O(1) budget of {budget}: {msg:?}",
                self.ids[slot.0],
            );
        }
        self.metrics.broadcasts += 1;
        self.metrics.per_slot_broadcasts[slot.0] += 1;
        self.metrics.max_message_ids = self.metrics.max_message_ids.max(ids);
        self.metrics.total_message_ids += ids as u64;
        self.trace.push(TraceEvent::Broadcast {
            time: self.now,
            slot,
            ids,
        });

        let bcast = BcastId(self.bcast_seq);
        self.bcast_seq += 1;
        self.outstanding[slot.0] = Some(bcast);

        // Reuse the scratch neighbor buffer (the scheduler borrows it
        // while `self` stays mutable for the queue pushes below).
        let mut neighbors = std::mem::take(&mut self.neighbor_scratch);
        neighbors.clear();
        neighbors.extend_from_slice(self.topo.neighbors(slot));
        let plan = self.scheduler.plan(self.now, slot, &neighbors);
        if let Err(e) = plan.validate(neighbors.len(), self.scheduler.f_ack()) {
            panic!("scheduler produced an invalid plan for {slot}: {e}");
        }

        let mut events = self.events_pool.pop().unwrap_or_default();
        events.reserve(neighbors.len() + 1);
        for (i, &nbr) in neighbors.iter().enumerate() {
            let kind = EventKind::Receive {
                to: nbr,
                from: slot,
                bcast,
                unreliable: false,
            };
            events.push(
                self.queue
                    .push(self.now + plan.receive_delays[i], kind.class(), kind),
            );
        }
        let ack = EventKind::Ack { node: slot, bcast };
        events.push(self.queue.push(self.now + plan.ack_delay, ack.class(), ack));

        if let Some((overlay, p)) = &self.unreliable {
            let f_ack = self.scheduler.f_ack().max(1);
            for nbr in overlay.neighbors(slot) {
                if self.engine_rng.gen_bool(*p) {
                    let delay = self.engine_rng.gen_range(1..=f_ack);
                    let kind = EventKind::Receive {
                        to: nbr,
                        from: slot,
                        bcast,
                        unreliable: true,
                    };
                    events.push(self.queue.push(self.now + delay, kind.class(), kind));
                }
            }
        }

        self.inflight[slot.0].push(InFlight {
            bcast: bcast.0,
            msg,
            refs: events.len(),
            events,
        });

        // Resolve any planned mid-broadcast crash against this
        // broadcast via the shared ledger.
        match self.ledger.admit_broadcast(slot.0, bcast.0) {
            Admission::Deliver => {}
            Admission::CrashImmediately => self.handle_crash(slot),
            Admission::PartialThenCrash { delivered } => {
                assert!(
                    delivered <= neighbors.len(),
                    "mid-broadcast crash wants {delivered} deliveries but {slot} has {} neighbors",
                    neighbors.len()
                );
            }
        }
        self.neighbor_scratch = neighbors;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::sched::sync::SynchronousScheduler;

    /// Floods a token; decides 1 on first receive, or 0 at start for
    /// the initiator.
    struct Flood {
        initiator: bool,
        relayed: bool,
    }

    #[derive(Clone, Debug)]
    struct Token;
    impl Payload for Token {
        fn id_count(&self) -> usize {
            0
        }
    }

    impl Process for Flood {
        type Msg = Token;
        fn on_start(&mut self, ctx: &mut Context<'_, Token>) {
            if self.initiator {
                self.relayed = true;
                ctx.broadcast(Token);
                ctx.decide(0);
            }
        }
        fn on_receive(&mut self, _m: Token, ctx: &mut Context<'_, Token>) {
            if !self.relayed {
                self.relayed = true;
                ctx.broadcast(Token);
            }
            if ctx.decided().is_none() {
                ctx.decide(1);
            }
        }
        fn on_ack(&mut self, _ctx: &mut Context<'_, Token>) {}
    }

    fn flood_sim(topo: Topology) -> Sim<Flood> {
        SimBuilder::new(topo, |s| Flood {
            initiator: s.0 == 0,
            relayed: false,
        })
        .scheduler(SynchronousScheduler::new(1))
        .build()
    }

    #[test]
    fn flood_crosses_line_in_d_rounds() {
        let mut sim = flood_sim(Topology::line(6));
        let report = sim.run();
        assert!(report.all_decided());
        // Node i (i >= 1) receives the token at round i.
        for i in 1..6 {
            assert_eq!(report.decisions[i].unwrap().time, Time(i as u64));
        }
        assert_eq!(report.metrics.broadcasts, 6);
        // The run stops the instant the last node decides; acks still
        // in the heap at that point are never processed.
        assert!(report.metrics.acks >= 4);
    }

    #[test]
    fn single_hop_flood_takes_one_round() {
        let mut sim = flood_sim(Topology::clique(5));
        let report = sim.run();
        assert!(report.all_decided());
        assert_eq!(report.max_decision_time(), Some(Time(1)));
        // Each delivery of the initial broadcast plus relays.
        assert!(report.metrics.deliveries >= 4);
    }

    #[test]
    fn run_until_pauses_mid_execution() {
        let mut sim = flood_sim(Topology::line(8));
        sim.run_until(Time(3));
        assert_eq!(sim.now(), Time(3));
        // Nodes 1..=3 decided, the rest not yet.
        assert!(sim.decisions()[3].is_some());
        assert!(sim.decisions()[4].is_none());
        let report = sim.run();
        assert!(report.all_decided());
    }

    #[test]
    fn crash_at_time_halts_node() {
        let mut sim = SimBuilder::new(Topology::line(4), |s| Flood {
            initiator: s.0 == 0,
            relayed: false,
        })
        .scheduler(SynchronousScheduler::new(1))
        .crashes(CrashPlan::new(vec![CrashSpec::AtTime {
            slot: Slot(2),
            time: Time(1),
        }]))
        .build();
        let report = sim.run();
        // Node 2 crashes as the token reaches node 1; the flood dies there.
        assert_eq!(report.metrics.crashes, 1);
        assert!(report.decisions[1].is_some());
        assert!(report.decisions[3].is_none());
        assert_eq!(report.outcome, RunOutcome::Quiescent);
    }

    #[test]
    fn crash_at_time_zero_excludes_node() {
        let mut sim = SimBuilder::new(Topology::clique(3), |s| Flood {
            initiator: s.0 == 0,
            relayed: false,
        })
        .scheduler(SynchronousScheduler::new(1))
        .crashes(CrashPlan::new(vec![CrashSpec::AtTime {
            slot: Slot(1),
            time: Time::ZERO,
        }]))
        .build();
        let report = sim.run();
        assert!(report.all_decided());
        assert!(report.decisions[1].is_none());
        assert!(report.decisions[2].is_some());
    }

    /// Records every received token.
    struct Counter {
        received: usize,
        emit: bool,
    }

    impl Process for Counter {
        type Msg = Token;
        fn on_start(&mut self, ctx: &mut Context<'_, Token>) {
            if self.emit {
                ctx.broadcast(Token);
            }
        }
        fn on_receive(&mut self, _m: Token, _ctx: &mut Context<'_, Token>) {
            self.received += 1;
        }
        fn on_ack(&mut self, _ctx: &mut Context<'_, Token>) {}
    }

    #[test]
    fn mid_broadcast_crash_delivers_to_prefix_only() {
        // Clique of 5; node 0 broadcasts and crashes after exactly 2
        // deliveries. Exactly two other nodes get the message.
        let mut sim = SimBuilder::new(Topology::clique(5), |s| Counter {
            received: 0,
            emit: s.0 == 0,
        })
        .scheduler(SynchronousScheduler::new(1))
        .crashes(CrashPlan::new(vec![CrashSpec::MidBroadcast {
            slot: Slot(0),
            nth_broadcast: 0,
            delivered: 2,
        }]))
        .build();
        let report = sim.run();
        assert_eq!(report.metrics.crashes, 1);
        let total: usize = (1..5).map(|i| sim.process(Slot(i)).received).sum();
        assert_eq!(total, 2, "exactly the allowed prefix was delivered");
        // The sender never got an ack.
        assert_eq!(report.metrics.acks, 0);
    }

    #[test]
    fn mid_broadcast_crash_with_zero_deliveries() {
        let mut sim = SimBuilder::new(Topology::clique(4), |s| Counter {
            received: 0,
            emit: s.0 == 0,
        })
        .scheduler(SynchronousScheduler::new(1))
        .crashes(CrashPlan::new(vec![CrashSpec::MidBroadcast {
            slot: Slot(0),
            nth_broadcast: 0,
            delivered: 0,
        }]))
        .build();
        let report = sim.run();
        let total: usize = (1..4).map(|i| sim.process(Slot(i)).received).sum();
        assert_eq!(total, 0);
        assert_eq!(report.metrics.crashes, 1);
    }

    /// Broadcasts forever; used to exercise busy-discard and horizons.
    struct Chatter;
    impl Process for Chatter {
        type Msg = Token;
        fn on_start(&mut self, ctx: &mut Context<'_, Token>) {
            ctx.broadcast(Token);
            ctx.broadcast(Token); // discarded: already busy
        }
        fn on_receive(&mut self, _m: Token, ctx: &mut Context<'_, Token>) {
            ctx.broadcast(Token); // discarded whenever busy
        }
        fn on_ack(&mut self, ctx: &mut Context<'_, Token>) {
            ctx.broadcast(Token);
        }
    }

    #[test]
    fn busy_broadcasts_are_discarded_and_horizon_stops() {
        let mut sim = SimBuilder::new(Topology::clique(3), |_| Chatter)
            .scheduler(SynchronousScheduler::new(1))
            .max_time(Time(50))
            .build();
        let report = sim.run();
        assert_eq!(report.outcome, RunOutcome::MaxTime);
        assert!(report.metrics.busy_discards > 0);
        // One broadcast per node per round, including the start round
        // and the round at the horizon itself.
        assert_eq!(report.metrics.broadcasts, 3 * 51);
    }

    #[test]
    fn trace_records_event_sequence() {
        let mut sim = SimBuilder::new(Topology::line(2), |s| Flood {
            initiator: s.0 == 0,
            relayed: false,
        })
        .scheduler(SynchronousScheduler::new(1))
        .trace(true)
        .build();
        sim.run();
        let events = sim.trace().events();
        assert!(matches!(
            events[0],
            TraceEvent::Broadcast { slot: Slot(0), .. }
        ));
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::Deliver {
                from: Slot(0),
                to: Slot(1),
                ..
            }
        )));
        assert!(sim.trace().decisions().count() >= 2);
    }

    #[test]
    fn deterministic_across_identical_builds() {
        let run = |seed| {
            let mut sim = SimBuilder::new(Topology::random_connected(12, 0.2, 3), |s| Flood {
                initiator: s.0 == 0,
                relayed: false,
            })
            .scheduler(RandomScheduler::new(5, seed))
            .seed(seed)
            .build();
            let r = sim.run();
            (r.end_time, r.metrics.deliveries, r.metrics.broadcasts)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    /// Message carrying a configurable id count.
    #[derive(Clone, Debug)]
    struct Wide(usize);
    impl Payload for Wide {
        fn id_count(&self) -> usize {
            self.0
        }
    }

    struct WideSender(usize);
    impl Process for WideSender {
        type Msg = Wide;
        fn on_start(&mut self, ctx: &mut Context<'_, Wide>) {
            ctx.broadcast(Wide(self.0));
        }
        fn on_receive(&mut self, _m: Wide, _ctx: &mut Context<'_, Wide>) {}
        fn on_ack(&mut self, ctx: &mut Context<'_, Wide>) {
            ctx.decide(0);
        }
    }

    #[test]
    fn id_budget_allows_within_budget() {
        let mut sim = SimBuilder::new(Topology::clique(2), |_| WideSender(3))
            .scheduler(SynchronousScheduler::new(1))
            .message_id_budget(4)
            .build();
        let report = sim.run();
        assert!(report.all_decided());
        assert_eq!(report.metrics.max_message_ids, 3);
    }

    #[test]
    #[should_panic(expected = "exceeding the O(1) budget")]
    fn id_budget_panics_on_violation() {
        let mut sim = SimBuilder::new(Topology::clique(2), |_| WideSender(9))
            .scheduler(SynchronousScheduler::new(1))
            .message_id_budget(4)
            .build();
        sim.run();
    }

    #[test]
    fn ack_arrives_after_all_deliveries() {
        // With the random scheduler over many seeds, a node's ack is
        // always processed after its message reached all neighbors:
        // deliveries of broadcast b never follow b's ack.
        for seed in 0..20 {
            let mut sim = SimBuilder::new(Topology::clique(6), |s| Flood {
                initiator: s.0 == 0,
                relayed: false,
            })
            .scheduler(RandomScheduler::new(9, seed))
            .trace(true)
            .build();
            sim.run();
            let mut acked = std::collections::HashSet::new();
            for ev in sim.trace().events() {
                match *ev {
                    TraceEvent::Ack { slot, .. } => {
                        acked.insert(slot);
                    }
                    TraceEvent::Deliver { from, .. } => {
                        assert!(
                            !acked.contains(&from),
                            "seed {seed}: delivery from {from} after its ack"
                        );
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn custom_ids_rejected_when_duplicated() {
        let build =
            || SimBuilder::new(Topology::clique(2), |_| Chatter).ids(vec![NodeId(1), NodeId(1)]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(build));
        assert!(result.is_err());
    }

    #[test]
    fn mid_broadcast_crash_fires_even_with_dead_receivers() {
        // clique(3): slot 1 is dead at t=0 and slot 0's first
        // broadcast is watched with delivered=2. One of the two
        // allowed delivery slots falls on the dead receiver; the
        // planned sender crash must still fire (matching the threaded
        // ether, which crashes the sender up front), with exactly one
        // real delivery and no ack.
        let mut sim = SimBuilder::new(Topology::clique(3), |s| Counter {
            received: 0,
            emit: s.0 == 0,
        })
        .scheduler(SynchronousScheduler::new(1))
        .crashes(CrashPlan::new(vec![
            CrashSpec::AtTime {
                slot: Slot(1),
                time: Time::ZERO,
            },
            CrashSpec::MidBroadcast {
                slot: Slot(0),
                nth_broadcast: 0,
                delivered: 2,
            },
        ]))
        .build();
        let report = sim.run();
        assert!(sim.is_crashed(Slot(0)), "planned sender crash skipped");
        assert_eq!(report.metrics.crashes, 1, "time-zero crash is uncounted");
        assert_eq!(report.metrics.deliveries, 1);
        assert_eq!(sim.process(Slot(2)).received, 1);
        assert_eq!(report.metrics.acks, 0, "interrupted broadcast acked");
    }

    #[test]
    fn sender_crash_cancels_pending_events() {
        // Node 0 broadcasts at t=0 (deliveries at t=1 under the
        // synchronous scheduler) but crashes at t=0 via an AtTime
        // spec processed after its start callback... instead use a
        // mid-broadcast watch with 1 of 4 deliveries: the remaining 3
        // deliveries and the ack are cancelled on the queue, never
        // popped.
        let mut sim = SimBuilder::new(Topology::clique(5), |s| Counter {
            received: 0,
            emit: s.0 == 0,
        })
        .scheduler(SynchronousScheduler::new(1))
        .crashes(CrashPlan::new(vec![CrashSpec::MidBroadcast {
            slot: Slot(0),
            nth_broadcast: 0,
            delivered: 1,
        }]))
        .build();
        let report = sim.run();
        assert_eq!(report.metrics.crashes, 1);
        // 1 delivery fired; 3 deliveries + 1 ack cancelled.
        assert_eq!(report.metrics.deliveries, 1);
        assert_eq!(report.metrics.acks, 0);
    }
}
