//! The discrete-event execution engine: a sharded driver over the
//! cancellable [`EventQueue`] cores and the shared [`BcastLedger`]
//! delivery/ack/crash bookkeeping.
//!
//! The engine's job is reduced to wiring: it asks the [`Scheduler`]
//! for a delivery plan per broadcast, schedules the resulting
//! receive/ack events on the queue,
//! and lets the ledger answer the semantic questions (is this node
//! crashed, does a planned mid-broadcast crash interrupt this
//! broadcast). When a sender crashes, its in-flight broadcast's
//! remaining events are *cancelled* on the queue (O(1) tombstones)
//! rather than popped-and-skipped, which keeps the hot loop free of
//! per-event liveness checks.
//!
//! # Sharded execution
//!
//! The process set can be partitioned across `S` shards
//! ([`SimBuilder::shards`], `AMACL_SHARDS`): each shard owns its own
//! [`EventQueue`] and processes the events targeting its slots, while
//! a **conservative time-window coordinator**
//! ([`Sim::run`] → the windowed loop) advances all shards through
//! `lookahead`-sized windows derived from the scheduler's minimum
//! delay bound ([`Scheduler::min_delay`]). Events one shard schedules
//! for another travel through deterministic per-edge mailboxes that
//! are flushed at window boundaries; within a window the coordinator
//! drains shard heads in global `(time, class, seq)` order, so the
//! execution — trace, decisions, semantic counters — is
//! **byte-identical** to the serial engine at every shard count. The
//! full protocol and its cancellation-across-shards semantics are
//! documented in [`super::shard`]. Serial (`S = 1`) takes a dedicated
//! fast path with no window or routing overhead.
//!
//! Hot-path state is laid out densely: in-flight broadcasts live in a
//! per-slot table (no hash maps anywhere in the loop), the event-id
//! vectors they carry are pooled across broadcasts, and a shared
//! payload is cloned once per *delivery that actually happens* — the
//! final delivery moves the payload out instead of cloning, and
//! deliveries to crashed receivers never touch it. The queue core
//! itself is selectable per [`SimBuilder::queue_core`]; see
//! [`super::queue`] for the two implementations.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::ids::{NodeId, Slot};
use crate::mac::{Admission, BcastLedger, LedgerShardView};
use crate::msg::Payload;
use crate::proc::{Context, Decision, Process, Value};
use crate::topo::unreliable::UnreliableOverlay;
use crate::topo::Topology;

use super::crash::{CrashPlan, CrashSpec};
use super::event::{BcastId, EventClass, EventKind};
use super::queue::{EventId, EventQueue, QueueCoreKind};
use super::sched::random::RandomScheduler;
use super::sched::Scheduler;
use super::shard::{MailEntry, Mailbox, ShardCount, ShardMap};
use super::time::Time;
use super::trace::{Metrics, Trace, TraceEvent};

/// Why an execution stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// Every non-crashed node has decided.
    AllDecided,
    /// No events remain (the algorithm went quiescent without all
    /// nodes deciding).
    Quiescent,
    /// The virtual-time horizon was reached.
    MaxTime,
    /// The event-count safety limit was reached.
    EventLimit,
}

/// Summary of a completed [`Sim::run`].
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Why the run stopped.
    pub outcome: RunOutcome,
    /// Virtual time when it stopped.
    pub end_time: Time,
    /// Per-slot decisions (`None` for undecided or crashed-undecided).
    pub decisions: Vec<Option<Decision>>,
    /// Aggregate counters.
    pub metrics: Metrics,
}

impl RunReport {
    /// `true` when the run ended with every non-crashed node decided.
    pub fn all_decided(&self) -> bool {
        self.outcome == RunOutcome::AllDecided
    }

    /// The distinct decided values, sorted.
    pub fn decided_values(&self) -> Vec<Value> {
        let mut vals: Vec<Value> = self.decisions.iter().flatten().map(|d| d.value).collect();
        vals.sort_unstable();
        vals.dedup();
        vals
    }

    /// The common decided value, if all deciders agree and at least one
    /// node decided.
    pub fn agreement_value(&self) -> Option<Value> {
        match self.decided_values().as_slice() {
            [v] => Some(*v),
            _ => None,
        }
    }

    /// Latest decision time among deciders.
    pub fn max_decision_time(&self) -> Option<Time> {
        self.decisions.iter().flatten().map(|d| d.time).max()
    }

    /// Earliest decision time among deciders.
    pub fn min_decision_time(&self) -> Option<Time> {
        self.decisions.iter().flatten().map(|d| d.time).min()
    }
}

/// Builder for a [`Sim`].
pub struct SimBuilder<P: Process> {
    topo: Topology,
    procs: Vec<P>,
    ids: Vec<NodeId>,
    scheduler: Box<dyn Scheduler>,
    crash_plan: CrashPlan,
    max_time: Time,
    max_events: u64,
    stop_when_all_decided: bool,
    message_id_budget: Option<usize>,
    trace_enabled: bool,
    seed: u64,
    unreliable: Option<(UnreliableOverlay, f64)>,
    queue_core: QueueCoreKind,
    shards: usize,
}

impl<P: Process> SimBuilder<P> {
    /// Starts a builder, constructing one process per topology slot via
    /// `init`.
    ///
    /// Defaults: ids equal to slot indices, a seeded
    /// [`RandomScheduler`] with `F_ack = 8`, no crashes, a large time
    /// horizon, stop-on-all-decided, no id-budget enforcement, tracing
    /// off, the queue core named by the `AMACL_QUEUE_CORE` environment
    /// variable (the heap when unset — see [`QueueCoreKind::from_env`]),
    /// and the shard count named by `AMACL_SHARDS` (serial when unset —
    /// see [`ShardCount::from_env`]).
    pub fn new(topo: Topology, mut init: impl FnMut(Slot) -> P) -> Self {
        let n = topo.len();
        let procs: Vec<P> = (0..n).map(|i| init(Slot(i))).collect();
        let ids: Vec<NodeId> = (0..n).map(|i| NodeId(i as u64)).collect();
        Self {
            topo,
            procs,
            ids,
            scheduler: Box::new(RandomScheduler::new(8, 0)),
            crash_plan: CrashPlan::none(),
            max_time: Time(10_000_000),
            max_events: 200_000_000,
            stop_when_all_decided: true,
            message_id_budget: None,
            trace_enabled: false,
            seed: 0,
            unreliable: None,
            queue_core: QueueCoreKind::from_env(),
            shards: ShardCount::from_env().get(),
        }
    }

    /// Sets the message scheduler (the model's adversary).
    pub fn scheduler(mut self, s: impl Scheduler + 'static) -> Self {
        self.scheduler = Box::new(s);
        self
    }

    /// Selects the event-queue core (heap or calendar). The two cores
    /// are observably identical — same traces, same reports — so this
    /// is purely a performance knob; see [`QueueCoreKind`].
    pub fn queue_core(mut self, kind: QueueCoreKind) -> Self {
        self.queue_core = kind;
        self
    }

    /// Partitions the execution across `shards` worker shards driven
    /// by the conservative time-window coordinator (clamped to the
    /// node count; see [`super::shard`] for the protocol). Sharding is
    /// observably identity-preserving — traces and reports are
    /// byte-identical at every shard count — so, like the queue core,
    /// this is purely an execution-architecture knob.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "shard count must be at least 1");
        self.shards = shards;
        self
    }

    /// Assigns custom unique node ids (length must equal `n`).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or duplicate ids.
    pub fn ids(mut self, ids: Vec<NodeId>) -> Self {
        assert_eq!(ids.len(), self.topo.len(), "one id per slot");
        let mut sorted: Vec<_> = ids.iter().map(|i| i.raw()).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "ids must be unique");
        self.ids = ids;
        self
    }

    /// Schedules crash failures.
    pub fn crashes(mut self, plan: CrashPlan) -> Self {
        self.crash_plan = plan;
        self
    }

    /// Sets the virtual-time horizon.
    pub fn max_time(mut self, t: Time) -> Self {
        self.max_time = t;
        self
    }

    /// Sets the event-count safety limit.
    pub fn max_events(mut self, n: u64) -> Self {
        self.max_events = n;
        self
    }

    /// Whether [`Sim::run`] stops as soon as all non-crashed nodes have
    /// decided (default `true`).
    pub fn stop_when_all_decided(mut self, stop: bool) -> Self {
        self.stop_when_all_decided = stop;
        self
    }

    /// Enforces the model's `O(1)`-ids-per-message restriction: any
    /// broadcast whose [`Payload::id_count`] exceeds `budget` panics.
    pub fn message_id_budget(mut self, budget: usize) -> Self {
        self.message_id_budget = Some(budget);
        self
    }

    /// Enables event tracing.
    pub fn trace(mut self, enabled: bool) -> Self {
        self.trace_enabled = enabled;
        self
    }

    /// Seeds per-node randomness and unreliable-overlay sampling.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds an unreliable-link overlay: each broadcast is additionally
    /// delivered over each overlay edge with probability `p`, at an
    /// arbitrary time within the `F_ack` window, without the ack ever
    /// waiting for it (the dual-graph model variant).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn unreliable(mut self, overlay: UnreliableOverlay, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.unreliable = Some((overlay, p));
        self
    }

    /// Builds the simulator (processes have not started yet; the first
    /// call to [`Sim::run`] or [`Sim::run_until`] starts them).
    ///
    /// # Panics
    ///
    /// Panics when more than one shard is requested and the scheduler
    /// declares zero lookahead ([`Scheduler::min_delay`] returning 0):
    /// a conservative sharded engine cannot advance on zero lookahead
    /// — rejecting the configuration up front beats deadlocking in the
    /// window loop.
    pub fn build(self) -> Sim<P> {
        let n = self.topo.len();
        let shard_map = ShardMap::new(n, self.shards);
        let nshards = shard_map.shards();
        // The conservative window length. An unreliable overlay
        // schedules extra deliveries as little as one tick out,
        // regardless of what the scheduler promises, so it clamps the
        // lookahead to the model floor.
        let lookahead = if self.unreliable.is_some() {
            self.scheduler.min_delay().min(1)
        } else {
            self.scheduler.min_delay()
        };
        if nshards > 1 {
            assert!(
                lookahead >= 1,
                "scheduler declares zero lookahead (min_delay() == 0): the conservative \
                 sharded engine cannot advance a time window on it; run with shards(1) \
                 or fix the scheduler's min_delay()"
            );
        }
        let mut ledger = BcastLedger::new(n);
        let mut shards: Vec<EventQueue<EventKind>> = (0..nshards)
            .map(|_| EventQueue::with_core(self.queue_core))
            .collect();
        let mailboxes: Vec<Mailbox<EventKind>> =
            (0..nshards * nshards).map(|_| Mailbox::new()).collect();
        let mut next_event_id = 0u64;
        let mut undecided = n;
        for spec in self.crash_plan.specs() {
            match *spec {
                CrashSpec::AtTime { slot, time } => {
                    if time == Time::ZERO {
                        ledger.mark_crashed(slot.0);
                        undecided -= 1;
                    } else {
                        // Ids come from the engine-global counter in
                        // spec order, exactly matching the serial
                        // single-queue push order.
                        let id = EventId(next_event_id);
                        next_event_id += 1;
                        shards[shard_map.shard_of(slot.0)].push_at(
                            time,
                            EventClass::Crash as u8,
                            id,
                            EventKind::Crash { node: slot },
                        );
                    }
                }
                CrashSpec::MidBroadcast {
                    slot,
                    nth_broadcast,
                    delivered,
                } => {
                    ledger.arm_watch(slot.0, nth_broadcast, delivered);
                }
            }
        }
        let rngs: Vec<SmallRng> = (0..n)
            .map(|i| {
                SmallRng::seed_from_u64(
                    self.seed
                        ^ (i as u64)
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add(1),
                )
            })
            .collect();
        let mut metrics = Metrics::new(n);
        metrics.per_shard_events = vec![0; nshards];
        Sim {
            topo: self.topo,
            procs: self.procs,
            ids: self.ids,
            scheduler: self.scheduler,
            shards,
            shard_map,
            mailboxes,
            next_event_id,
            lookahead,
            mailbox_cancels: 0,
            current_shard: 0,
            ledger,
            now: Time::ZERO,
            started: false,
            bcast_seq: 0,
            inflight: (0..n).map(|_| Vec::new()).collect(),
            events_pool: Vec::new(),
            neighbor_scratch: Vec::new(),
            outstanding: vec![None; n],
            decisions: vec![None; n],
            ts_seqs: vec![0; n],
            rngs,
            engine_rng: SmallRng::seed_from_u64(self.seed.wrapping_add(0xA5A5_5A5A)),
            undecided,
            max_time: self.max_time,
            max_events: self.max_events,
            stop_when_all_decided: self.stop_when_all_decided,
            message_id_budget: self.message_id_budget,
            trace: Trace::new(self.trace_enabled),
            metrics,
            unreliable: self.unreliable,
        }
    }
}

/// One in-flight broadcast: its id, the shared payload, a count of
/// still-pending queue events referencing it, and those events'
/// `(id, destination shard)` pairs (for bulk cancellation when the
/// sender crashes — the shard routes the cancel to the right queue or
/// mailbox).
struct InFlight<M> {
    bcast: u64,
    msg: M,
    refs: usize,
    events: Vec<(EventId, u32)>,
}

/// A running (or runnable) simulation.
pub struct Sim<P: Process> {
    topo: Topology,
    procs: Vec<P>,
    ids: Vec<NodeId>,
    scheduler: Box<dyn Scheduler>,
    /// One event queue per shard; `shards.len() == 1` is the serial
    /// fast path (no routing, no windows).
    shards: Vec<EventQueue<EventKind>>,
    /// Balanced block partition of slots onto shards.
    shard_map: ShardMap,
    /// Per-edge cross-shard mailboxes, indexed `src * S + dst`;
    /// flushed at window boundaries (empty when serial).
    mailboxes: Vec<Mailbox<EventKind>>,
    /// Engine-global event-id allocator: ids double as the
    /// deterministic `(time, class, seq)` tie-break, so they must be
    /// allocated in scheduling order across all shards.
    next_event_id: u64,
    /// The scheduler's declared minimum delay — the conservative
    /// window length.
    lookahead: u64,
    /// Cancellations that caught their event in a mailbox (in transit
    /// between shards); folded into `queue_cancellations`.
    mailbox_cancels: u64,
    /// Shard whose event is currently being processed; routes the
    /// events that processing schedules.
    current_shard: u32,
    ledger: BcastLedger,
    now: Time,
    started: bool,
    bcast_seq: u64,
    /// In-flight broadcasts, densely indexed by the *sender's* slot.
    /// Each node has at most one outstanding broadcast, so the inner
    /// vector holds one entry in the common case; a second appears
    /// only while an already-acked broadcast still has unreliable-
    /// overlay deliveries pending. Lookups are positional scans of
    /// these tiny vectors — no hashing on the hot path, and nothing
    /// order-sensitive to leak nondeterminism.
    inflight: Vec<Vec<InFlight<P::Msg>>>,
    /// Recycled event-id vectors (the per-broadcast cancellation
    /// lists), so steady-state broadcasting allocates nothing.
    events_pool: Vec<Vec<(EventId, u32)>>,
    /// Recycled neighbor-list buffer for `start_broadcast`.
    neighbor_scratch: Vec<Slot>,
    outstanding: Vec<Option<BcastId>>,
    decisions: Vec<Option<Decision>>,
    ts_seqs: Vec<u64>,
    rngs: Vec<SmallRng>,
    engine_rng: SmallRng,
    undecided: usize,
    max_time: Time,
    max_events: u64,
    stop_when_all_decided: bool,
    message_id_budget: Option<usize>,
    trace: Trace,
    metrics: Metrics,
    unreliable: Option<(UnreliableOverlay, f64)>,
}

impl<P: Process> Sim<P> {
    /// The topology under simulation.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The id assigned to `slot`.
    pub fn id_of(&self, slot: Slot) -> NodeId {
        self.ids[slot.0]
    }

    /// Immutable access to a process (for state inspection between
    /// [`Sim::run_until`] calls, e.g. indistinguishability checks).
    pub fn process(&self, slot: Slot) -> &P {
        &self.procs[slot.0]
    }

    /// Whether `slot` has crashed.
    pub fn is_crashed(&self, slot: Slot) -> bool {
        self.ledger.is_crashed(slot.0)
    }

    /// Per-slot decisions so far.
    pub fn decisions(&self) -> &[Option<Decision>] {
        &self.decisions
    }

    /// Counters so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The event trace (empty unless enabled at build time).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Number of shards this simulation runs on (1 = serial).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The conservative window length (the scheduler's declared
    /// minimum delay).
    pub fn lookahead(&self) -> u64 {
        self.lookahead
    }

    /// The slot range shard `shard` owns.
    pub fn shard_slots(&self, shard: usize) -> std::ops::Range<usize> {
        self.shard_map.slots_of(shard)
    }

    /// The ledger's shard-local summary for `shard` (crash/watch/
    /// obligation counts over its slot range) — the imbalance view.
    pub fn shard_ledger_view(&self, shard: usize) -> LedgerShardView {
        let range = self.shard_map.slots_of(shard);
        self.ledger.shard_view(range.start, range.end)
    }

    /// `true` when every non-crashed node has decided.
    pub fn all_alive_decided(&self) -> bool {
        self.undecided == 0
    }

    /// Runs to completion and reports.
    pub fn run(&mut self) -> RunReport {
        let outcome = self.run_inner(None);
        RunReport {
            outcome,
            end_time: self.now,
            decisions: self.decisions.clone(),
            metrics: self.metrics.clone(),
        }
    }

    /// Processes all events up to and including virtual time `until`,
    /// ignoring the stop-on-all-decided rule (used for lockstep
    /// inspection of executions).
    pub fn run_until(&mut self, until: Time) -> RunOutcome {
        let saved = self.stop_when_all_decided;
        self.stop_when_all_decided = false;
        let outcome = self.run_inner(Some(until));
        self.stop_when_all_decided = saved;
        if self.now < until {
            self.now = until;
        }
        outcome
    }

    fn run_inner(&mut self, until: Option<Time>) -> RunOutcome {
        let outcome = if self.shards.len() == 1 {
            self.run_loop_serial(until)
        } else {
            self.run_loop_sharded(until)
        };
        // Queue-core counters are folded into the metrics whenever the
        // loop yields, so reports always carry up-to-date figures. The
        // pushes figure is the engine-global allocator (every event
        // ever scheduled, on any shard); cancellations count tombstones
        // on every shard's queue plus events caught in transit in a
        // mailbox — together byte-identical to the serial figures.
        self.metrics.queue_pushes = self.next_event_id;
        self.metrics.queue_cancellations =
            self.shards.iter().map(|q| q.cancelled_total()).sum::<u64>() + self.mailbox_cancels;
        self.metrics.queue_bucket_overflows =
            self.shards.iter().map(|q| q.bucket_overflows()).sum();
        outcome
    }

    /// Starts every non-crashed process (first `run`/`run_until` call
    /// only). Shared by both loop flavors; routing of the broadcasts
    /// the starts issue follows `current_shard`.
    fn start_procs(&mut self) {
        self.started = true;
        for i in 0..self.topo.len() {
            if !self.ledger.is_crashed(i) {
                self.current_shard = self.shard_map.shard_of(i) as u32;
                self.dispatch(Slot(i), |p, ctx| p.on_start(ctx));
            }
        }
    }

    /// The serial (`S = 1`) hot loop: one queue, no routing, no
    /// windows — the exact pre-sharding fast path.
    fn run_loop_serial(&mut self, until: Option<Time>) -> RunOutcome {
        if !self.started {
            self.start_procs();
        }
        loop {
            if self.stop_when_all_decided && self.undecided == 0 {
                return RunOutcome::AllDecided;
            }
            let Some(next_time) = self.shards[0].peek_time() else {
                return if self.undecided == 0 {
                    RunOutcome::AllDecided
                } else {
                    RunOutcome::Quiescent
                };
            };
            if let Some(limit) = until {
                if next_time > limit {
                    return RunOutcome::MaxTime;
                }
            }
            if next_time > self.max_time {
                return RunOutcome::MaxTime;
            }
            if self.metrics.events >= self.max_events {
                return RunOutcome::EventLimit;
            }
            let ev = self.shards[0].pop().expect("peeked");
            self.now = ev.time;
            self.metrics.events += 1;
            self.process_event(ev.payload);
        }
    }

    /// The conservative time-window coordinator (`S > 1`).
    ///
    /// Protocol per iteration: flush every cross-shard mailbox into
    /// its destination queue, open a window `[W, W + lookahead)` at
    /// the global minimum head time, and drain all shard heads due in
    /// the window in global `(time, class, seq)` order. The lookahead
    /// guarantees nothing processed inside the window schedules into
    /// it, so mailboxes stay untouched until the next boundary, and
    /// the merged order — hence the trace, decisions, and counters —
    /// is byte-identical to the serial loop's. See [`super::shard`].
    fn run_loop_sharded(&mut self, until: Option<Time>) -> RunOutcome {
        debug_assert!(self.lookahead >= 1, "checked at build time");
        if !self.started {
            self.start_procs();
        }
        loop {
            if self.stop_when_all_decided && self.undecided == 0 {
                return RunOutcome::AllDecided;
            }
            self.flush_mailboxes();
            let Some(window_start) = self.min_head_time() else {
                return if self.undecided == 0 {
                    RunOutcome::AllDecided
                } else {
                    RunOutcome::Quiescent
                };
            };
            if let Some(limit) = until {
                if window_start > limit {
                    return RunOutcome::MaxTime;
                }
            }
            if window_start > self.max_time {
                return RunOutcome::MaxTime;
            }
            let window_end = Time(window_start.ticks().saturating_add(self.lookahead - 1));
            self.metrics.shard_window_advances += 1;
            loop {
                if self.stop_when_all_decided && self.undecided == 0 {
                    return RunOutcome::AllDecided;
                }
                let Some((shard, next_time)) = self.min_head_in_window(window_end) else {
                    break; // window drained; open the next one
                };
                if let Some(limit) = until {
                    if next_time > limit {
                        return RunOutcome::MaxTime;
                    }
                }
                if next_time > self.max_time {
                    return RunOutcome::MaxTime;
                }
                if self.metrics.events >= self.max_events {
                    return RunOutcome::EventLimit;
                }
                let ev = self.shards[shard].pop().expect("peeked");
                self.now = ev.time;
                self.metrics.events += 1;
                self.metrics.per_shard_events[shard] += 1;
                self.current_shard = shard as u32;
                self.process_event(ev.payload);
            }
        }
    }

    /// One engine step: dispatch a popped event to its handler. The
    /// per-shard step function both loop flavors share.
    fn process_event(&mut self, ev: EventKind) {
        match ev {
            EventKind::Crash { node } => self.handle_crash(node),
            EventKind::Receive {
                to,
                from,
                bcast,
                unreliable,
            } => self.handle_receive(to, from, bcast, unreliable),
            EventKind::Ack { node, bcast } => self.handle_ack(node, bcast),
        }
    }

    /// Drains every cross-shard mailbox into its destination queue
    /// (entries keep their scheduling-time ids, so pop order is
    /// unaffected by drain order). Counts one flush per non-empty
    /// edge.
    fn flush_mailboxes(&mut self) {
        let s = self.shards.len();
        for src in 0..s {
            for dst in 0..s {
                let mb = &mut self.mailboxes[src * s + dst];
                if mb.is_empty() {
                    continue;
                }
                self.metrics.shard_mailbox_flushes += 1;
                let queue = &mut self.shards[dst];
                mb.drain_into(|e: MailEntry<EventKind>| {
                    queue.push_at(e.time, e.class, e.id, e.payload);
                });
            }
        }
    }

    /// The earliest head time across all shard queues.
    fn min_head_time(&mut self) -> Option<Time> {
        self.shards.iter_mut().filter_map(|q| q.peek_time()).min()
    }

    /// The shard holding the globally smallest `(time, class, seq)`
    /// head due at or before `window_end`, with that head's time.
    fn min_head_in_window(&mut self, window_end: Time) -> Option<(usize, Time)> {
        let mut best: Option<((Time, u8, u64), usize)> = None;
        for (i, q) in self.shards.iter_mut().enumerate() {
            if let Some(key) = q.peek_key() {
                if key.0 <= window_end && best.is_none_or(|(b, _)| key < b) {
                    best = Some((key, i));
                }
            }
        }
        best.map(|((t, ..), i)| (i, t))
    }

    /// Allocates the next event id and routes `kind` at `time`: into
    /// the owning shard's queue directly, or into the per-edge mailbox
    /// when the target slot lives on another shard. Returns the id and
    /// the destination shard (the cancellation route).
    fn schedule(&mut self, time: Time, kind: EventKind) -> (EventId, u32) {
        let id = EventId(self.next_event_id);
        self.next_event_id += 1;
        let class = kind.class();
        if self.shards.len() == 1 {
            self.shards[0].push_at(time, class, id, kind);
            return (id, 0);
        }
        let dst = self.shard_map.shard_of(kind.target().0) as u32;
        let src = self.current_shard;
        if dst == src {
            self.shards[dst as usize].push_at(time, class, id, kind);
        } else {
            self.metrics.cross_shard_deliveries += 1;
            self.mailboxes[src as usize * self.shards.len() + dst as usize].push(MailEntry {
                time,
                class,
                id,
                payload: kind,
            });
        }
        (id, dst)
    }

    /// Cancels one scheduled event wherever it lives: on the
    /// destination shard's queue (O(1) tombstone), or — when it is
    /// still in transit between `src` and `dst` — in the mailbox. Ids
    /// that already fired are a no-op in both places.
    fn cancel_event(&mut self, id: EventId, dst: u32, src: u32) {
        if self.shards[dst as usize].cancel(id) {
            return;
        }
        if dst != src && self.mailboxes[src as usize * self.shards.len() + dst as usize].cancel(id)
        {
            self.mailbox_cancels += 1;
        }
    }

    fn handle_crash(&mut self, node: Slot) {
        if !self.ledger.mark_crashed(node.0) {
            return;
        }
        self.metrics.crashes += 1;
        self.trace.push(TraceEvent::Crash {
            time: self.now,
            slot: node,
        });
        if self.decisions[node.0].is_none() {
            self.undecided -= 1;
        }
        if let Some(BcastId(b)) = self.outstanding[node.0].take() {
            self.cancel_broadcast(node, b);
        }
    }

    /// Voids a crashed sender's in-flight broadcast: every still-
    /// pending delivery and the ack are cancelled wherever they live —
    /// queue tombstones on their destination shards, or removal from a
    /// mailbox for entries still in transit — so they simply never
    /// fire.
    fn cancel_broadcast(&mut self, sender: Slot, bcast: u64) {
        let list = &mut self.inflight[sender.0];
        if let Some(idx) = list.iter().position(|e| e.bcast == bcast) {
            let entry = list.swap_remove(idx);
            // All of this broadcast's events were scheduled from the
            // sender's shard; that is the mailbox row to search for
            // in-transit entries.
            let src = self.shard_map.shard_of(sender.0) as u32;
            for &(id, dst) in &entry.events {
                self.cancel_event(id, dst, src);
            }
            self.recycle(entry.events);
        }
    }

    /// Returns an event-id vector to the pool for reuse.
    fn recycle(&mut self, mut events: Vec<(EventId, u32)>) {
        if self.events_pool.len() < self.topo.len() {
            events.clear();
            self.events_pool.push(events);
        }
    }

    fn handle_receive(&mut self, to: Slot, from: Slot, bcast: BcastId, unreliable: bool) {
        // The receiver may have crashed after this delivery was
        // scheduled; the message is silently lost (and never cloned).
        // The lost delivery still consumes its slot in any
        // mid-broadcast crash countdown, so the sender's planned crash
        // fires even when watched deliveries target dead receivers —
        // the contract shared with the threaded ether, whose prefix
        // over all neighbors likewise burns slots on dead receivers
        // (see Admission::PartialThenCrash).
        let to_crashed = self.ledger.is_crashed(to.0);
        let msg = {
            let list = &mut self.inflight[from.0];
            let idx = list
                .iter()
                .position(|e| e.bcast == bcast.0)
                .expect("message for pending delivery");
            let entry = &mut list[idx];
            entry.refs -= 1;
            if entry.refs == 0 {
                // Final reference: move the payload out, no clone.
                let entry = list.swap_remove(idx);
                let msg = (!to_crashed).then_some(entry.msg);
                self.recycle(entry.events);
                msg
            } else if to_crashed {
                None
            } else {
                Some(entry.msg.clone())
            }
        };
        if to_crashed {
            if !unreliable && self.ledger.note_delivery(bcast.0) {
                self.handle_crash(from);
            }
            return;
        }
        let msg = msg.expect("payload for a live receiver");
        self.metrics.deliveries += u64::from(!unreliable);
        self.metrics.unreliable_deliveries += u64::from(unreliable);
        self.trace.push(TraceEvent::Deliver {
            time: self.now,
            from,
            to,
            unreliable,
        });
        self.dispatch(to, |p, ctx| p.on_receive(msg, ctx));
        // Mid-broadcast crash: the sender dies immediately after this
        // delivery; the rest of the broadcast never happens.
        if !unreliable && self.ledger.note_delivery(bcast.0) {
            self.handle_crash(from);
        }
    }

    fn handle_ack(&mut self, node: Slot, bcast: BcastId) {
        let list = &mut self.inflight[node.0];
        if let Some(idx) = list.iter().position(|e| e.bcast == bcast.0) {
            let entry = &mut list[idx];
            entry.refs -= 1;
            if entry.refs == 0 {
                let entry = list.swap_remove(idx);
                self.recycle(entry.events);
            }
        }
        // A crashed sender's ack event is cancelled with its broadcast,
        // so this only fires for live nodes.
        debug_assert!(!self.ledger.is_crashed(node.0), "ack for a crashed node");
        debug_assert_eq!(self.outstanding[node.0], Some(bcast));
        self.outstanding[node.0] = None;
        self.metrics.acks += 1;
        self.trace.push(TraceEvent::Ack {
            time: self.now,
            slot: node,
        });
        self.dispatch(node, |p, ctx| p.on_ack(ctx));
    }

    /// Runs one process callback with a fresh context, then services
    /// any broadcast it requested and records any new decision.
    fn dispatch<F>(&mut self, slot: Slot, f: F)
    where
        F: FnOnce(&mut P, &mut Context<'_, P::Msg>),
    {
        let had_decision = self.decisions[slot.0].is_some();
        let mut outbox: Option<P::Msg> = None;
        {
            let mut ctx = Context {
                id: self.ids[slot.0],
                now: self.now,
                busy: self.outstanding[slot.0].is_some(),
                outbox: &mut outbox,
                decision: &mut self.decisions[slot.0],
                ts_seq: &mut self.ts_seqs[slot.0],
                busy_discards: &mut self.metrics.busy_discards,
                rng: &mut self.rngs[slot.0],
            };
            f(&mut self.procs[slot.0], &mut ctx);
        }
        if let Some(m) = outbox {
            self.start_broadcast(slot, m);
        }
        if !had_decision {
            if let Some(d) = self.decisions[slot.0] {
                self.trace.push(TraceEvent::Decide {
                    time: d.time,
                    slot,
                    value: d.value,
                });
                if !self.ledger.is_crashed(slot.0) {
                    self.undecided -= 1;
                }
            }
        }
    }

    fn start_broadcast(&mut self, slot: Slot, msg: P::Msg) {
        debug_assert!(!self.ledger.is_crashed(slot.0), "crashed node broadcast");
        debug_assert!(self.outstanding[slot.0].is_none(), "double broadcast");
        let ids = msg.id_count();
        if let Some(budget) = self.message_id_budget {
            assert!(
                ids <= budget,
                "message from {} carries {ids} ids, exceeding the O(1) budget of {budget}: {msg:?}",
                self.ids[slot.0],
            );
        }
        self.metrics.broadcasts += 1;
        self.metrics.per_slot_broadcasts[slot.0] += 1;
        self.metrics.max_message_ids = self.metrics.max_message_ids.max(ids);
        self.metrics.total_message_ids += ids as u64;
        self.trace.push(TraceEvent::Broadcast {
            time: self.now,
            slot,
            ids,
        });

        let bcast = BcastId(self.bcast_seq);
        self.bcast_seq += 1;
        self.outstanding[slot.0] = Some(bcast);

        // Reuse the scratch neighbor buffer (the scheduler borrows it
        // while `self` stays mutable for the queue pushes below).
        let mut neighbors = std::mem::take(&mut self.neighbor_scratch);
        neighbors.clear();
        neighbors.extend_from_slice(self.topo.neighbors(slot));
        let plan = self.scheduler.plan(self.now, slot, &neighbors);
        if let Err(e) = plan.validate(neighbors.len(), self.scheduler.f_ack()) {
            panic!("scheduler produced an invalid plan for {slot}: {e}");
        }
        if self.shards.len() > 1 {
            // The conservative windows are only sound if every plan
            // honors the declared lookahead; a scheduler that
            // undercuts its own min_delay() would let an event sneak
            // into an already-open window.
            let floor = plan
                .receive_delays
                .iter()
                .copied()
                .chain([plan.ack_delay])
                .min()
                .unwrap_or(plan.ack_delay);
            assert!(
                floor >= self.lookahead,
                "scheduler violated its declared lookahead for {slot}: plans a delay of \
                 {floor} ticks but min_delay() promised >= {}",
                self.lookahead
            );
        }

        let mut events = self.events_pool.pop().unwrap_or_default();
        events.reserve(neighbors.len() + 1);
        for (i, &nbr) in neighbors.iter().enumerate() {
            let kind = EventKind::Receive {
                to: nbr,
                from: slot,
                bcast,
                unreliable: false,
            };
            events.push(self.schedule(self.now + plan.receive_delays[i], kind));
        }
        let ack = EventKind::Ack { node: slot, bcast };
        events.push(self.schedule(self.now + plan.ack_delay, ack));

        // Take the overlay out while sampling so `schedule` can borrow
        // `self` mutably (no clone on the hot path). Overlay delays are
        // >= 1, which the build-time lookahead clamp accounts for.
        if let Some((overlay, p)) = self.unreliable.take() {
            let f_ack = self.scheduler.f_ack().max(1);
            for nbr in overlay.neighbors(slot) {
                if self.engine_rng.gen_bool(p) {
                    let delay = self.engine_rng.gen_range(1..=f_ack);
                    let kind = EventKind::Receive {
                        to: nbr,
                        from: slot,
                        bcast,
                        unreliable: true,
                    };
                    events.push(self.schedule(self.now + delay, kind));
                }
            }
            self.unreliable = Some((overlay, p));
        }

        self.inflight[slot.0].push(InFlight {
            bcast: bcast.0,
            msg,
            refs: events.len(),
            events,
        });

        // Resolve any planned mid-broadcast crash against this
        // broadcast via the shared ledger.
        match self.ledger.admit_broadcast(slot.0, bcast.0) {
            Admission::Deliver => {}
            Admission::CrashImmediately => self.handle_crash(slot),
            Admission::PartialThenCrash { delivered } => {
                assert!(
                    delivered <= neighbors.len(),
                    "mid-broadcast crash wants {delivered} deliveries but {slot} has {} neighbors",
                    neighbors.len()
                );
            }
        }
        self.neighbor_scratch = neighbors;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::sched::sync::SynchronousScheduler;

    /// Floods a token; decides 1 on first receive, or 0 at start for
    /// the initiator.
    struct Flood {
        initiator: bool,
        relayed: bool,
    }

    #[derive(Clone, Debug)]
    struct Token;
    impl Payload for Token {
        fn id_count(&self) -> usize {
            0
        }
    }

    impl Process for Flood {
        type Msg = Token;
        fn on_start(&mut self, ctx: &mut Context<'_, Token>) {
            if self.initiator {
                self.relayed = true;
                ctx.broadcast(Token);
                ctx.decide(0);
            }
        }
        fn on_receive(&mut self, _m: Token, ctx: &mut Context<'_, Token>) {
            if !self.relayed {
                self.relayed = true;
                ctx.broadcast(Token);
            }
            if ctx.decided().is_none() {
                ctx.decide(1);
            }
        }
        fn on_ack(&mut self, _ctx: &mut Context<'_, Token>) {}
    }

    fn flood_sim(topo: Topology) -> Sim<Flood> {
        SimBuilder::new(topo, |s| Flood {
            initiator: s.0 == 0,
            relayed: false,
        })
        .scheduler(SynchronousScheduler::new(1))
        .build()
    }

    #[test]
    fn flood_crosses_line_in_d_rounds() {
        let mut sim = flood_sim(Topology::line(6));
        let report = sim.run();
        assert!(report.all_decided());
        // Node i (i >= 1) receives the token at round i.
        for i in 1..6 {
            assert_eq!(report.decisions[i].unwrap().time, Time(i as u64));
        }
        assert_eq!(report.metrics.broadcasts, 6);
        // The run stops the instant the last node decides; acks still
        // in the heap at that point are never processed.
        assert!(report.metrics.acks >= 4);
    }

    #[test]
    fn single_hop_flood_takes_one_round() {
        let mut sim = flood_sim(Topology::clique(5));
        let report = sim.run();
        assert!(report.all_decided());
        assert_eq!(report.max_decision_time(), Some(Time(1)));
        // Each delivery of the initial broadcast plus relays.
        assert!(report.metrics.deliveries >= 4);
    }

    #[test]
    fn run_until_pauses_mid_execution() {
        let mut sim = flood_sim(Topology::line(8));
        sim.run_until(Time(3));
        assert_eq!(sim.now(), Time(3));
        // Nodes 1..=3 decided, the rest not yet.
        assert!(sim.decisions()[3].is_some());
        assert!(sim.decisions()[4].is_none());
        let report = sim.run();
        assert!(report.all_decided());
    }

    #[test]
    fn crash_at_time_halts_node() {
        let mut sim = SimBuilder::new(Topology::line(4), |s| Flood {
            initiator: s.0 == 0,
            relayed: false,
        })
        .scheduler(SynchronousScheduler::new(1))
        .crashes(CrashPlan::new(vec![CrashSpec::AtTime {
            slot: Slot(2),
            time: Time(1),
        }]))
        .build();
        let report = sim.run();
        // Node 2 crashes as the token reaches node 1; the flood dies there.
        assert_eq!(report.metrics.crashes, 1);
        assert!(report.decisions[1].is_some());
        assert!(report.decisions[3].is_none());
        assert_eq!(report.outcome, RunOutcome::Quiescent);
    }

    #[test]
    fn crash_at_time_zero_excludes_node() {
        let mut sim = SimBuilder::new(Topology::clique(3), |s| Flood {
            initiator: s.0 == 0,
            relayed: false,
        })
        .scheduler(SynchronousScheduler::new(1))
        .crashes(CrashPlan::new(vec![CrashSpec::AtTime {
            slot: Slot(1),
            time: Time::ZERO,
        }]))
        .build();
        let report = sim.run();
        assert!(report.all_decided());
        assert!(report.decisions[1].is_none());
        assert!(report.decisions[2].is_some());
    }

    /// Records every received token.
    struct Counter {
        received: usize,
        emit: bool,
    }

    impl Process for Counter {
        type Msg = Token;
        fn on_start(&mut self, ctx: &mut Context<'_, Token>) {
            if self.emit {
                ctx.broadcast(Token);
            }
        }
        fn on_receive(&mut self, _m: Token, _ctx: &mut Context<'_, Token>) {
            self.received += 1;
        }
        fn on_ack(&mut self, _ctx: &mut Context<'_, Token>) {}
    }

    #[test]
    fn mid_broadcast_crash_delivers_to_prefix_only() {
        // Clique of 5; node 0 broadcasts and crashes after exactly 2
        // deliveries. Exactly two other nodes get the message.
        let mut sim = SimBuilder::new(Topology::clique(5), |s| Counter {
            received: 0,
            emit: s.0 == 0,
        })
        .scheduler(SynchronousScheduler::new(1))
        .crashes(CrashPlan::new(vec![CrashSpec::MidBroadcast {
            slot: Slot(0),
            nth_broadcast: 0,
            delivered: 2,
        }]))
        .build();
        let report = sim.run();
        assert_eq!(report.metrics.crashes, 1);
        let total: usize = (1..5).map(|i| sim.process(Slot(i)).received).sum();
        assert_eq!(total, 2, "exactly the allowed prefix was delivered");
        // The sender never got an ack.
        assert_eq!(report.metrics.acks, 0);
    }

    #[test]
    fn mid_broadcast_crash_with_zero_deliveries() {
        let mut sim = SimBuilder::new(Topology::clique(4), |s| Counter {
            received: 0,
            emit: s.0 == 0,
        })
        .scheduler(SynchronousScheduler::new(1))
        .crashes(CrashPlan::new(vec![CrashSpec::MidBroadcast {
            slot: Slot(0),
            nth_broadcast: 0,
            delivered: 0,
        }]))
        .build();
        let report = sim.run();
        let total: usize = (1..4).map(|i| sim.process(Slot(i)).received).sum();
        assert_eq!(total, 0);
        assert_eq!(report.metrics.crashes, 1);
    }

    /// Broadcasts forever; used to exercise busy-discard and horizons.
    struct Chatter;
    impl Process for Chatter {
        type Msg = Token;
        fn on_start(&mut self, ctx: &mut Context<'_, Token>) {
            ctx.broadcast(Token);
            ctx.broadcast(Token); // discarded: already busy
        }
        fn on_receive(&mut self, _m: Token, ctx: &mut Context<'_, Token>) {
            ctx.broadcast(Token); // discarded whenever busy
        }
        fn on_ack(&mut self, ctx: &mut Context<'_, Token>) {
            ctx.broadcast(Token);
        }
    }

    #[test]
    fn busy_broadcasts_are_discarded_and_horizon_stops() {
        let mut sim = SimBuilder::new(Topology::clique(3), |_| Chatter)
            .scheduler(SynchronousScheduler::new(1))
            .max_time(Time(50))
            .build();
        let report = sim.run();
        assert_eq!(report.outcome, RunOutcome::MaxTime);
        assert!(report.metrics.busy_discards > 0);
        // One broadcast per node per round, including the start round
        // and the round at the horizon itself.
        assert_eq!(report.metrics.broadcasts, 3 * 51);
    }

    #[test]
    fn trace_records_event_sequence() {
        let mut sim = SimBuilder::new(Topology::line(2), |s| Flood {
            initiator: s.0 == 0,
            relayed: false,
        })
        .scheduler(SynchronousScheduler::new(1))
        .trace(true)
        .build();
        sim.run();
        let events = sim.trace().events();
        assert!(matches!(
            events[0],
            TraceEvent::Broadcast { slot: Slot(0), .. }
        ));
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::Deliver {
                from: Slot(0),
                to: Slot(1),
                ..
            }
        )));
        assert!(sim.trace().decisions().count() >= 2);
    }

    #[test]
    fn deterministic_across_identical_builds() {
        let run = |seed| {
            let mut sim = SimBuilder::new(Topology::random_connected(12, 0.2, 3), |s| Flood {
                initiator: s.0 == 0,
                relayed: false,
            })
            .scheduler(RandomScheduler::new(5, seed))
            .seed(seed)
            .build();
            let r = sim.run();
            (r.end_time, r.metrics.deliveries, r.metrics.broadcasts)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    /// Message carrying a configurable id count.
    #[derive(Clone, Debug)]
    struct Wide(usize);
    impl Payload for Wide {
        fn id_count(&self) -> usize {
            self.0
        }
    }

    struct WideSender(usize);
    impl Process for WideSender {
        type Msg = Wide;
        fn on_start(&mut self, ctx: &mut Context<'_, Wide>) {
            ctx.broadcast(Wide(self.0));
        }
        fn on_receive(&mut self, _m: Wide, _ctx: &mut Context<'_, Wide>) {}
        fn on_ack(&mut self, ctx: &mut Context<'_, Wide>) {
            ctx.decide(0);
        }
    }

    #[test]
    fn id_budget_allows_within_budget() {
        let mut sim = SimBuilder::new(Topology::clique(2), |_| WideSender(3))
            .scheduler(SynchronousScheduler::new(1))
            .message_id_budget(4)
            .build();
        let report = sim.run();
        assert!(report.all_decided());
        assert_eq!(report.metrics.max_message_ids, 3);
    }

    #[test]
    #[should_panic(expected = "exceeding the O(1) budget")]
    fn id_budget_panics_on_violation() {
        let mut sim = SimBuilder::new(Topology::clique(2), |_| WideSender(9))
            .scheduler(SynchronousScheduler::new(1))
            .message_id_budget(4)
            .build();
        sim.run();
    }

    #[test]
    fn ack_arrives_after_all_deliveries() {
        // With the random scheduler over many seeds, a node's ack is
        // always processed after its message reached all neighbors:
        // deliveries of broadcast b never follow b's ack.
        for seed in 0..20 {
            let mut sim = SimBuilder::new(Topology::clique(6), |s| Flood {
                initiator: s.0 == 0,
                relayed: false,
            })
            .scheduler(RandomScheduler::new(9, seed))
            .trace(true)
            .build();
            sim.run();
            let mut acked = std::collections::HashSet::new();
            for ev in sim.trace().events() {
                match *ev {
                    TraceEvent::Ack { slot, .. } => {
                        acked.insert(slot);
                    }
                    TraceEvent::Deliver { from, .. } => {
                        assert!(
                            !acked.contains(&from),
                            "seed {seed}: delivery from {from} after its ack"
                        );
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn custom_ids_rejected_when_duplicated() {
        let build =
            || SimBuilder::new(Topology::clique(2), |_| Chatter).ids(vec![NodeId(1), NodeId(1)]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(build));
        assert!(result.is_err());
    }

    #[test]
    fn mid_broadcast_crash_fires_even_with_dead_receivers() {
        // clique(3): slot 1 is dead at t=0 and slot 0's first
        // broadcast is watched with delivered=2. One of the two
        // allowed delivery slots falls on the dead receiver; the
        // planned sender crash must still fire (matching the threaded
        // ether, which crashes the sender up front), with exactly one
        // real delivery and no ack.
        let mut sim = SimBuilder::new(Topology::clique(3), |s| Counter {
            received: 0,
            emit: s.0 == 0,
        })
        .scheduler(SynchronousScheduler::new(1))
        .crashes(CrashPlan::new(vec![
            CrashSpec::AtTime {
                slot: Slot(1),
                time: Time::ZERO,
            },
            CrashSpec::MidBroadcast {
                slot: Slot(0),
                nth_broadcast: 0,
                delivered: 2,
            },
        ]))
        .build();
        let report = sim.run();
        assert!(sim.is_crashed(Slot(0)), "planned sender crash skipped");
        assert_eq!(report.metrics.crashes, 1, "time-zero crash is uncounted");
        assert_eq!(report.metrics.deliveries, 1);
        assert_eq!(sim.process(Slot(2)).received, 1);
        assert_eq!(report.metrics.acks, 0, "interrupted broadcast acked");
    }

    /// A run configuration whose observables we compare across shard
    /// counts: trace bytes, decisions, and the semantic counters.
    fn observables(report: &RunReport, sim: &Sim<Flood>) -> impl PartialEq + std::fmt::Debug {
        (
            report.outcome,
            report.end_time,
            report.decisions.clone(),
            report.metrics.broadcasts,
            report.metrics.deliveries,
            report.metrics.acks,
            report.metrics.crashes,
            report.metrics.events,
            report.metrics.queue_pushes,
            report.metrics.queue_cancellations,
            sim.trace().clone(),
        )
    }

    /// The sharded-engine contract: for every shard count and both
    /// queue cores, the trace and report are byte-identical to serial.
    #[test]
    fn sharded_runs_are_byte_identical_to_serial() {
        for core in QueueCoreKind::all() {
            for topo in [
                Topology::line(9),
                Topology::clique(6),
                Topology::random_connected(14, 0.2, 3),
            ] {
                let run = |shards: usize| {
                    let mut sim = SimBuilder::new(topo.clone(), |s| Flood {
                        initiator: s.0 == 0,
                        relayed: false,
                    })
                    .scheduler(RandomScheduler::new(5, 11))
                    .crashes(CrashPlan::new(vec![CrashSpec::AtTime {
                        slot: Slot(topo.len() - 1),
                        time: Time(2),
                    }]))
                    .queue_core(core)
                    .shards(shards)
                    .trace(true)
                    .build();
                    let report = sim.run();
                    (observables(&report, &sim), sim.shard_count())
                };
                let (serial, s1) = run(1);
                assert_eq!(s1, 1);
                for shards in [2usize, 3, 7] {
                    let (sharded, actual) = run(shards);
                    assert_eq!(
                        serial, sharded,
                        "{core} core, {shards} shards ({actual} effective) diverged from serial"
                    );
                }
            }
        }
    }

    /// Mid-broadcast crashes reach across shards: the countdown fires
    /// on a delivery processed by one shard, crashes the sender on
    /// another, and the remaining events — including any still in a
    /// mailbox — are cancelled. Counters must match serial exactly.
    #[test]
    fn sharded_mid_broadcast_crash_matches_serial() {
        let run = |shards: usize| {
            let mut sim = SimBuilder::new(Topology::clique(6), |s| Counter {
                received: 0,
                emit: s.0 == 0,
            })
            .scheduler(SynchronousScheduler::new(1))
            .crashes(CrashPlan::new(vec![CrashSpec::MidBroadcast {
                slot: Slot(0),
                nth_broadcast: 0,
                delivered: 2,
            }]))
            .shards(shards)
            .trace(true)
            .build();
            let report = sim.run();
            (
                report.metrics.deliveries,
                report.metrics.acks,
                report.metrics.crashes,
                report.metrics.queue_cancellations,
                sim.trace().clone(),
            )
        };
        let serial = run(1);
        assert_eq!(serial.0, 2, "exactly the allowed prefix");
        for shards in [2usize, 3, 6] {
            assert_eq!(serial, run(shards), "{shards} shards");
        }
    }

    /// `run_until` pause/resume crosses window boundaries without
    /// losing mailbox contents or disturbing the merged order.
    #[test]
    fn sharded_run_until_matches_serial() {
        let run = |shards: usize| {
            let mut sim = flood_sim(Topology::line(8));
            let mut sim2 = SimBuilder::new(Topology::line(8), |s| Flood {
                initiator: s.0 == 0,
                relayed: false,
            })
            .scheduler(SynchronousScheduler::new(1))
            .shards(shards)
            .build();
            sim.run_until(Time(3));
            sim2.run_until(Time(3));
            assert_eq!(sim.now(), sim2.now());
            assert_eq!(sim.decisions(), sim2.decisions(), "{shards} shards paused");
            let (a, b) = (sim.run(), sim2.run());
            assert_eq!(a.decisions, b.decisions, "{shards} shards resumed");
            assert_eq!(a.metrics.events, b.metrics.events);
        };
        for shards in [2usize, 4] {
            run(shards);
        }
    }

    /// Sharded runs populate the coordinator counters; serial runs
    /// leave them zero.
    #[test]
    fn shard_counters_surface_in_metrics() {
        // Shard counts pinned explicitly: this test's "serial" leg
        // must stay serial even under an `AMACL_SHARDS` env default.
        let run = |shards: usize| {
            let mut sim = SimBuilder::new(Topology::ring(8), |s| Flood {
                initiator: s.0 == 0,
                relayed: false,
            })
            .scheduler(SynchronousScheduler::new(1))
            .shards(shards)
            .build();
            sim.run().metrics
        };
        let serial = run(1);
        assert_eq!(serial.cross_shard_deliveries, 0);
        assert_eq!(serial.shard_window_advances, 0);
        assert_eq!(serial.shard_mailbox_flushes, 0);
        let sharded = run(4);
        assert!(sharded.cross_shard_deliveries > 0, "{sharded:?}");
        assert!(sharded.shard_window_advances > 0, "{sharded:?}");
        assert!(sharded.shard_mailbox_flushes > 0, "{sharded:?}");
        assert_eq!(sharded.per_shard_events.len(), 4);
        assert_eq!(sharded.per_shard_events.iter().sum::<u64>(), sharded.events);
        assert!(sharded.shard_skew() >= 1.0);
    }

    /// Shard counts beyond the node count clamp instead of creating
    /// empty shards.
    #[test]
    fn shard_count_clamps_to_node_count() {
        let mut sim = SimBuilder::new(Topology::clique(3), |s| Flood {
            initiator: s.0 == 0,
            relayed: false,
        })
        .scheduler(SynchronousScheduler::new(1))
        .shards(64)
        .build();
        assert_eq!(sim.shard_count(), 3);
        assert!(sim.run().all_decided());
    }

    /// A scheduler declaring zero lookahead is rejected at build time
    /// with a clear error — the conservative engine must not deadlock
    /// on it. Serial builds still accept it.
    #[test]
    fn zero_lookahead_scheduler_is_rejected_when_sharded() {
        struct ZeroLookahead;
        impl Scheduler for ZeroLookahead {
            fn f_ack(&self) -> u64 {
                4
            }
            fn min_delay(&self) -> u64 {
                0
            }
            fn plan(&mut self, _now: Time, _sender: Slot, neighbors: &[Slot]) -> BroadcastPlan {
                BroadcastPlan {
                    receive_delays: vec![1; neighbors.len()],
                    ack_delay: 1,
                }
            }
        }
        use super::super::sched::BroadcastPlan;
        let build = |shards: usize| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                SimBuilder::new(Topology::clique(4), |s| Flood {
                    initiator: s.0 == 0,
                    relayed: false,
                })
                .scheduler(ZeroLookahead)
                .shards(shards)
                .build()
            }))
        };
        // Serial: zero lookahead is irrelevant, the build succeeds.
        assert!(build(1).is_ok());
        // Sharded: rejected with a message naming the problem.
        let err = match build(2) {
            Ok(_) => panic!("zero-lookahead sharded build must be rejected"),
            Err(e) => e,
        };
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("zero lookahead"),
            "panic message should name the problem: {msg}"
        );
    }

    /// A scheduler whose plans undercut its declared lookahead is
    /// caught by the per-broadcast check instead of corrupting the
    /// window protocol.
    #[test]
    #[should_panic(expected = "violated its declared lookahead")]
    fn lookahead_violations_are_caught() {
        struct Overpromise;
        impl Scheduler for Overpromise {
            fn f_ack(&self) -> u64 {
                8
            }
            fn min_delay(&self) -> u64 {
                4 // promises 4, plans 1
            }
            fn plan(&mut self, _now: Time, _sender: Slot, neighbors: &[Slot]) -> BroadcastPlan {
                BroadcastPlan {
                    receive_delays: vec![1; neighbors.len()],
                    ack_delay: 1,
                }
            }
        }
        use super::super::sched::BroadcastPlan;
        let mut sim = SimBuilder::new(Topology::clique(4), |s| Flood {
            initiator: s.0 == 0,
            relayed: false,
        })
        .scheduler(Overpromise)
        .shards(2)
        .build();
        sim.run();
    }

    /// The max-delay adversary declares `F_ack` lookahead, so the
    /// coordinator batches a whole round per window.
    #[test]
    fn wide_lookahead_batches_windows() {
        let mut sim = SimBuilder::new(Topology::clique(5), |s| Flood {
            initiator: s.0 == 0,
            relayed: false,
        })
        .scheduler(crate::sim::sched::stall::MaxDelayScheduler::new(8))
        .shards(2)
        .build();
        assert_eq!(sim.lookahead(), 8);
        let report = sim.run();
        assert!(report.all_decided());
        assert!(
            report.metrics.shard_window_advances <= report.metrics.events,
            "{:?}",
            report.metrics
        );
    }

    /// The ledger's shard view summarizes per-shard crash state.
    #[test]
    fn shard_ledger_view_reports_crashes() {
        let mut sim = SimBuilder::new(Topology::clique(6), |s| Flood {
            initiator: s.0 == 0,
            relayed: false,
        })
        .scheduler(SynchronousScheduler::new(1))
        .crashes(CrashPlan::new(vec![CrashSpec::AtTime {
            slot: Slot(5),
            time: Time::ZERO,
        }]))
        .shards(2)
        .build();
        sim.run();
        let first = sim.shard_ledger_view(0);
        let last = sim.shard_ledger_view(1);
        assert_eq!(first.crashed, 0);
        assert_eq!(last.crashed, 1, "slot 5 lives in the last shard");
        assert_eq!(first.slots + last.slots, 6);
        assert_eq!(last.alive(), last.slots - 1);
    }

    #[test]
    fn sender_crash_cancels_pending_events() {
        // Node 0 broadcasts at t=0 (deliveries at t=1 under the
        // synchronous scheduler) but crashes at t=0 via an AtTime
        // spec processed after its start callback... instead use a
        // mid-broadcast watch with 1 of 4 deliveries: the remaining 3
        // deliveries and the ack are cancelled on the queue, never
        // popped.
        let mut sim = SimBuilder::new(Topology::clique(5), |s| Counter {
            received: 0,
            emit: s.0 == 0,
        })
        .scheduler(SynchronousScheduler::new(1))
        .crashes(CrashPlan::new(vec![CrashSpec::MidBroadcast {
            slot: Slot(0),
            nth_broadcast: 0,
            delivered: 1,
        }]))
        .build();
        let report = sim.run();
        assert_eq!(report.metrics.crashes, 1);
        // 1 delivery fired; 3 deliveries + 1 ack cancelled.
        assert_eq!(report.metrics.deliveries, 1);
        assert_eq!(report.metrics.acks, 0);
    }
}
