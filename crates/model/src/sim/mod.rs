//! Discrete-event simulator for the abstract MAC layer.
//!
//! The engine ([`engine::Sim`]) executes a set of
//! [`Process`](crate::proc::Process)es over a
//! [`Topology`](crate::topo::Topology), with all nondeterminism
//! delegated to a [`Scheduler`](sched::Scheduler). It enforces the
//! model's guarantees mechanically:
//!
//! * every accepted broadcast is delivered to each non-faulty neighbor
//!   exactly once, before the sender's ack;
//! * the ack arrives within `F_ack` ticks of the broadcast (plans are
//!   validated, so a buggy scheduler panics rather than cheats);
//! * a node with an outstanding broadcast has further broadcast
//!   attempts discarded;
//! * crashes can interrupt a broadcast mid-delivery
//!   ([`crash::CrashSpec::MidBroadcast`]), leaving only a prefix of
//!   neighbors with the message;
//! * local computation takes zero virtual time.

pub mod arena;
pub mod config;
pub mod conformance;
pub mod crash;
pub mod engine;
mod event;
pub mod queue;
pub mod sched;
pub mod shard;
pub mod time;
pub mod trace;
