//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in abstract *ticks*.
///
/// The scheduler's `F_ack` bound is expressed in the same ticks. Nodes
/// may read the clock but learn nothing about `F_ack` from it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Time(pub u64);

impl Time {
    /// Time zero, when every execution starts.
    pub const ZERO: Time = Time(0);

    /// Raw tick count.
    #[inline]
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }
}

impl Add<u64> for Time {
    type Output = Time;
    fn add(self, rhs: u64) -> Time {
        Time(self.0.checked_add(rhs).expect("virtual time overflow"))
    }
}

impl AddAssign<u64> for Time {
    fn add_assign(&mut self, rhs: u64) {
        *self = *self + rhs;
    }
}

impl Sub<Time> for Time {
    type Output = u64;
    fn sub(self, rhs: Time) -> u64 {
        self.0.checked_sub(rhs.0).expect("negative time difference")
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A globally unique logical timestamp, as produced by
/// [`Context::timestamp`](crate::proc::Context::timestamp).
///
/// Ordered lexicographically by `(time, node, seq)`: timestamps taken
/// later in virtual time are larger; ties at the same instant break by
/// node id, then by the node's own call sequence.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Timestamp {
    /// Virtual time of the call.
    pub time: Time,
    /// Raw id of the calling node.
    pub node: u64,
    /// Per-node call counter.
    pub seq: u64,
}

impl Timestamp {
    /// A timestamp smaller than any the simulator will ever produce
    /// (used as the initial `lastChange = -infinity` of Algorithm 3).
    pub const MINUS_INFINITY: Timestamp = Timestamp {
        time: Time(0),
        node: 0,
        seq: 0,
    };
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.time, self.node, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Time(5) + 3;
        assert_eq!(t, Time(8));
        assert_eq!(t - Time(5), 3);
        assert_eq!(Time(2).saturating_sub(Time(5)), Time::ZERO);
        let mut t = Time(1);
        t += 9;
        assert_eq!(t.ticks(), 10);
    }

    #[test]
    #[should_panic(expected = "negative time difference")]
    fn negative_difference_panics() {
        let _ = Time(1) - Time(2);
    }

    #[test]
    fn timestamp_ordering_is_time_major() {
        let a = Timestamp {
            time: Time(1),
            node: 9,
            seq: 9,
        };
        let b = Timestamp {
            time: Time(2),
            node: 0,
            seq: 0,
        };
        assert!(a < b);
        let c = Timestamp {
            time: Time(2),
            node: 1,
            seq: 0,
        };
        assert!(b < c);
        let d = Timestamp {
            time: Time(2),
            node: 1,
            seq: 1,
        };
        assert!(c < d);
        assert!(Timestamp::MINUS_INFINITY <= a);
    }
}
