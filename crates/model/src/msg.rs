//! Message payload accounting.
//!
//! The paper restricts messages to carry **at most a constant number of
//! unique ids** (Section 2). This restriction is what separates the
//! optimal `O(D * F_ack)` wPAXOS from the naive `O(n * F_ack)` flooding
//! approach: a bottleneck node relaying `Θ(n)` id/value pairs needs
//! `Θ(n)` broadcasts if each message holds only `O(1)` of them.
//!
//! Every message type used with the simulator implements [`Payload`],
//! reporting how many node ids it carries. The simulator records the
//! maximum observed id count and can optionally enforce a hard budget
//! (see [`SimBuilder::message_id_budget`](crate::sim::engine::SimBuilder::message_id_budget)),
//! so a test can prove an algorithm honors the model's message-size
//! restriction rather than merely claiming it.

/// Trait implemented by all message types run through the simulator.
pub trait Payload {
    /// Number of node ids carried by this message.
    ///
    /// Counts every [`NodeId`](crate::ids::NodeId) (or id-sized field,
    /// such as the id half of a Paxos proposal number) embedded in the
    /// message. Constant-size non-id data (bits, counters, hop counts)
    /// is not counted.
    fn id_count(&self) -> usize;

    /// Approximate size of the non-id portion of this message in bytes.
    ///
    /// Used only for reporting; defaults to zero.
    fn aux_bytes(&self) -> usize {
        0
    }
}

impl Payload for () {
    fn id_count(&self) -> usize {
        0
    }
}

impl<T: Payload> Payload for Option<T> {
    fn id_count(&self) -> usize {
        self.as_ref().map_or(0, Payload::id_count)
    }

    fn aux_bytes(&self) -> usize {
        self.as_ref().map_or(0, Payload::aux_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct TwoIds;
    impl Payload for TwoIds {
        fn id_count(&self) -> usize {
            2
        }
        fn aux_bytes(&self) -> usize {
            8
        }
    }

    #[test]
    fn unit_payload_is_id_free() {
        assert_eq!(().id_count(), 0);
        assert_eq!(().aux_bytes(), 0);
    }

    #[test]
    fn option_payload_delegates() {
        assert_eq!(Some(TwoIds).id_count(), 2);
        assert_eq!(Some(TwoIds).aux_bytes(), 8);
        assert_eq!(None::<TwoIds>.id_count(), 0);
    }
}
