//! The process abstraction: what an algorithm implements to run in the
//! abstract MAC layer model.
//!
//! A [`Process`] is a deterministic (or seeded-randomized) state
//! machine driven entirely by three callbacks, matching the model's
//! assumption that local computation takes zero time and all
//! nondeterminism lives in the scheduler:
//!
//! * [`Process::on_start`] — once, at time zero;
//! * [`Process::on_receive`] — when a neighbor's broadcast is delivered;
//! * [`Process::on_ack`] — when the node's own outstanding broadcast
//!   has been delivered to every non-faulty neighbor.
//!
//! Inside a callback the process interacts with the world only through
//! its [`Context`]: it may [`broadcast`](Context::broadcast) (at most
//! one outstanding message; extras are discarded, per the model) and
//! [`decide`](Context::decide) (irrevocably).

use rand::rngs::SmallRng;

use crate::ids::NodeId;
use crate::msg::Payload;
use crate::sim::time::{Time, Timestamp};

/// A consensus input/output value.
///
/// The paper studies binary consensus (`{0, 1}`), which strengthens its
/// lower bounds; the implementation accepts any `u64` so the upper
/// bounds can also be exercised with larger value spaces.
pub type Value = u64;

/// The result of asking the MAC layer to broadcast.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BroadcastOutcome {
    /// The message was handed to the MAC layer; an ack will follow.
    Accepted,
    /// A broadcast was already outstanding; the message was discarded
    /// (Section 2: "those extra messages are discarded").
    Discarded,
}

impl BroadcastOutcome {
    /// `true` for [`BroadcastOutcome::Accepted`].
    pub fn is_accepted(self) -> bool {
        matches!(self, BroadcastOutcome::Accepted)
    }
}

/// An algorithm running at one node.
///
/// `Send` is required (on the process and its messages) so the
/// thread-per-shard parallel stepper can hand each shard's processes
/// to a worker thread; node programs are plain owned data, so this
/// costs implementations nothing.
pub trait Process: Send + 'static {
    /// The message type this algorithm broadcasts.
    type Msg: Clone + std::fmt::Debug + Payload + Send + 'static;

    /// Called once when the execution begins.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>);

    /// Called when a message broadcast by some neighbor is delivered.
    ///
    /// The model does not reveal the sender; algorithms that need
    /// sender identity must embed it in the message (anonymous
    /// algorithms must not).
    fn on_receive(&mut self, msg: Self::Msg, ctx: &mut Context<'_, Self::Msg>);

    /// Called when this node's outstanding broadcast completes: every
    /// non-faulty neighbor has received it.
    fn on_ack(&mut self, ctx: &mut Context<'_, Self::Msg>);
}

/// Handle through which a process interacts with the MAC layer during
/// a callback.
pub struct Context<'a, M> {
    pub(crate) id: NodeId,
    pub(crate) now: Time,
    pub(crate) busy: bool,
    pub(crate) outbox: &'a mut Option<M>,
    pub(crate) decision: &'a mut Option<Decision>,
    pub(crate) ts_seq: &'a mut u64,
    pub(crate) busy_discards: &'a mut u64,
    pub(crate) rng: &'a mut SmallRng,
}

/// Per-node mutable state for *external* process drivers.
///
/// The built-in simulator drives processes itself; other executors —
/// the lower-bound step machine, the threaded MAC runtime — need to
/// run [`Process`] callbacks too. A `NodeCell` owns the per-node state
/// a [`Context`] borrows and mints contexts on demand.
#[derive(Debug)]
pub struct NodeCell<M> {
    /// Message the last callback asked to broadcast, if any.
    pub outbox: Option<M>,
    /// The node's decision, if made.
    pub decision: Option<Decision>,
    /// Timestamp sequence counter.
    pub ts_seq: u64,
    /// Count of busy-discarded broadcast attempts.
    pub busy_discards: u64,
    /// Node-local randomness.
    pub rng: SmallRng,
}

impl<M> NodeCell<M> {
    /// Creates a cell with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        use rand::SeedableRng;
        Self {
            outbox: None,
            decision: None,
            ts_seq: 0,
            busy_discards: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Mints a context for one callback invocation. `busy` reflects
    /// whether the node currently has an outstanding broadcast; any
    /// broadcast request lands in [`NodeCell::outbox`] for the driver
    /// to collect afterward.
    pub fn ctx(&mut self, id: NodeId, now: Time, busy: bool) -> Context<'_, M> {
        Context {
            id,
            now,
            busy,
            outbox: &mut self.outbox,
            decision: &mut self.decision,
            ts_seq: &mut self.ts_seq,
            busy_discards: &mut self.busy_discards,
            rng: &mut self.rng,
        }
    }
}

/// A recorded irrevocable decision.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Decision {
    /// The decided value.
    pub value: Value,
    /// Virtual time at which the decide action was performed.
    pub time: Time,
}

impl<'a, M> Context<'a, M> {
    /// This node's unique id.
    ///
    /// Anonymous algorithms (Section 3.2) simply never call this.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Local clock reading (virtual time).
    ///
    /// The simulator exposes a consistent clock; algorithms must not
    /// assume any relationship between clock readings and `F_ack`,
    /// which remains unknown to them.
    pub fn now(&self) -> Time {
        self.now
    }

    /// A fresh, strictly increasing, globally unique timestamp.
    ///
    /// Used by wPAXOS's change service (Algorithm 3, `time stamp()`).
    /// Ordered lexicographically by `(time, node id, per-node seq)`, so
    /// later events at the same node always compare larger, and ties
    /// across nodes break deterministically.
    pub fn timestamp(&mut self) -> Timestamp {
        let ts = Timestamp {
            time: self.now,
            node: self.id.raw(),
            seq: *self.ts_seq,
        };
        *self.ts_seq += 1;
        ts
    }

    /// Requests a broadcast of `msg` to all neighbors.
    ///
    /// Returns [`BroadcastOutcome::Discarded`] (and drops the message)
    /// if a broadcast is already outstanding — including one issued
    /// earlier in the same callback.
    pub fn broadcast(&mut self, msg: M) -> BroadcastOutcome {
        if self.busy {
            *self.busy_discards += 1;
            BroadcastOutcome::Discarded
        } else {
            self.busy = true;
            *self.outbox = Some(msg);
            BroadcastOutcome::Accepted
        }
    }

    /// `true` while a broadcast is outstanding (no ack yet), including
    /// one issued earlier in the current callback.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Performs the irrevocable decide action.
    ///
    /// Calling it again with the same value is a no-op (algorithms that
    /// flood decisions may re-learn their own decision); calling it
    /// with a *different* value panics, as that is a local-algorithm
    /// bug rather than an agreement violation between nodes.
    pub fn decide(&mut self, value: Value) {
        match *self.decision {
            None => {
                *self.decision = Some(Decision {
                    value,
                    time: self.now,
                });
            }
            Some(d) => {
                assert_eq!(
                    d.value, value,
                    "node {} attempted to re-decide {} after deciding {}",
                    self.id, value, d.value
                );
            }
        }
    }

    /// The value this node has decided, if any.
    pub fn decided(&self) -> Option<Value> {
        self.decision.map(|d| d.value)
    }

    /// Node-local seeded randomness, for randomized algorithms
    /// (e.g. the Ben-Or extension). Deterministic per (simulation seed,
    /// node).
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx<'a>(
        outbox: &'a mut Option<u8>,
        decision: &'a mut Option<Decision>,
        ts_seq: &'a mut u64,
        discards: &'a mut u64,
        rng: &'a mut SmallRng,
    ) -> Context<'a, u8> {
        Context {
            id: NodeId(7),
            now: Time(42),
            busy: false,
            outbox,
            decision,
            ts_seq,
            busy_discards: discards,
            rng,
        }
    }

    #[test]
    fn broadcast_once_then_discard() {
        let mut outbox = None;
        let mut decision = None;
        let mut seq = 0;
        let mut disc = 0;
        let mut rng = SmallRng::seed_from_u64(0);
        let mut c = ctx(&mut outbox, &mut decision, &mut seq, &mut disc, &mut rng);
        assert!(c.broadcast(1).is_accepted());
        assert!(c.is_busy());
        assert_eq!(c.broadcast(2), BroadcastOutcome::Discarded);
        assert_eq!(outbox, Some(1));
        assert_eq!(disc, 1);
    }

    #[test]
    fn decide_is_idempotent_for_same_value() {
        let mut outbox = None;
        let mut decision = None;
        let mut seq = 0;
        let mut disc = 0;
        let mut rng = SmallRng::seed_from_u64(0);
        let mut c = ctx(&mut outbox, &mut decision, &mut seq, &mut disc, &mut rng);
        assert_eq!(c.decided(), None);
        c.decide(1);
        c.decide(1);
        assert_eq!(c.decided(), Some(1));
        assert_eq!(decision.unwrap().time, Time(42));
    }

    #[test]
    #[should_panic(expected = "re-decide")]
    fn conflicting_decide_panics() {
        let mut outbox = None;
        let mut decision = None;
        let mut seq = 0;
        let mut disc = 0;
        let mut rng = SmallRng::seed_from_u64(0);
        let mut c = ctx(&mut outbox, &mut decision, &mut seq, &mut disc, &mut rng);
        c.decide(0);
        c.decide(1);
    }

    #[test]
    fn timestamps_strictly_increase() {
        let mut outbox = None;
        let mut decision = None;
        let mut seq = 0;
        let mut disc = 0;
        let mut rng = SmallRng::seed_from_u64(0);
        let mut c = ctx(&mut outbox, &mut decision, &mut seq, &mut disc, &mut rng);
        let t1 = c.timestamp();
        let t2 = c.timestamp();
        assert!(t2 > t1);
        assert_eq!(t1.node, 7);
    }
}
