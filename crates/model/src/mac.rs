//! The backend-agnostic abstract MAC layer interface.
//!
//! The paper defines one object — a MAC layer that (1) broadcasts to
//! all neighbors, (2) delivers each broadcast to every non-faulty
//! neighbor before acking the sender, (3) acks within `F_ack`, and
//! (4) lets a crash cut a broadcast off after an arbitrary prefix of
//! deliveries. This crate used to implement that object twice, with
//! subtly independent bookkeeping: once inside the discrete-event
//! engine and once inside the threaded runtime's ether. This module is
//! the single home for what they share:
//!
//! * [`MacLayer`] — the trait both execution backends implement. A
//!   backend takes a per-slot [`Process`] factory, runs the execution
//!   its own way (virtual time vs. real threads), and returns a
//!   [`MacReport`] in a common shape, so algorithms, conformance
//!   cross-checks, and experiment drivers are written once and run on
//!   either substrate.
//! * [`BcastLedger`] — the shared delivery/ack/crash state machine:
//!   which nodes are crashed, how many broadcasts each has issued,
//!   which broadcast a planned mid-broadcast crash interrupts and
//!   after how many deliveries, and which confirmations an in-flight
//!   broadcast still awaits before its sender may be acked. Both
//!   backends drive their delivery planes through this one ledger, so
//!   the partial-delivery crash semantics cannot drift apart again.
//!
//! The engine-backed implementation lives here as [`SimBackend`]; the
//! thread-backed implementation is `MacRuntime` in the `amacl-runtime`
//! crate.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::ids::Slot;
use crate::proc::{Process, Value};
use crate::sim::config::EngineConfig;
use crate::sim::crash::CrashPlan;
use crate::sim::engine::{RunReport, SimBuilder};
use crate::sim::queue::QueueCoreKind;
use crate::sim::sched::random::RandomScheduler;
use crate::sim::sched::stall::MaxDelayScheduler;
use crate::sim::sched::sync::SynchronousScheduler;
use crate::sim::sched::Scheduler;
use crate::sim::shard::WindowBatch;
use crate::sim::time::Time;
use crate::sim::trace::Trace;
use crate::topo::Topology;

/// One execution substrate for the abstract MAC layer.
///
/// Implementations construct one process per topology slot via `init`,
/// run the execution to completion (decision, quiescence, horizon, or
/// timeout — whatever the backend's stopping rule is), and report in
/// the backend-neutral [`MacReport`] shape.
///
/// The same [`Process`] implementation must behave identically under
/// every backend up to the nondeterminism the model grants the
/// scheduler; `amacl-checker`'s cross-check runs one algorithm through
/// two backends via this trait and diffs the reports.
pub trait MacLayer<P: Process> {
    /// Short stable name for reports and divergence messages.
    fn backend_name(&self) -> &'static str;

    /// Runs one execution with processes built by `init`.
    fn execute(&mut self, init: &mut dyn FnMut(Slot) -> P) -> MacReport;
}

/// Backend-neutral outcome of one MAC-layer execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MacReport {
    /// Which backend produced the report.
    pub backend: &'static str,
    /// Per-slot decided values (`None`: undecided or crashed).
    pub decisions: Vec<Option<Value>>,
    /// Whether every node expected to decide did so.
    pub all_decided: bool,
    /// Broadcasts accepted by the MAC layer.
    pub broadcasts: u64,
    /// Reliable deliveries performed.
    pub deliveries: u64,
}

impl MacReport {
    /// Builds a report from an engine [`RunReport`].
    pub fn from_run(report: &RunReport) -> Self {
        Self {
            backend: "sim",
            decisions: report
                .decisions
                .iter()
                .map(|d| d.map(|d| d.value))
                .collect(),
            all_decided: report.all_decided(),
            broadcasts: report.metrics.broadcasts,
            deliveries: report.metrics.deliveries,
        }
    }

    /// Distinct decided values, sorted.
    pub fn decided_values(&self) -> Vec<Value> {
        let mut v: Vec<Value> = self.decisions.iter().flatten().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The common decided value, if at least one node decided and all
    /// deciders agree.
    pub fn agreement_value(&self) -> Option<Value> {
        match self.decided_values().as_slice() {
            [v] => Some(*v),
            _ => None,
        }
    }
}

/// How a broadcast is admitted by the [`BcastLedger`]: normally, or
/// interrupted by a planned mid-broadcast crash.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Admission {
    /// Deliver to every non-faulty neighbor, then ack.
    Deliver,
    /// The sender's planned crash interrupts this broadcast before any
    /// delivery: nobody receives, nobody acks.
    CrashImmediately,
    /// The sender's planned crash interrupts this broadcast after at
    /// most `delivered` neighbor deliveries; no ack is ever issued.
    ///
    /// The ledger arms a countdown; backends either report each
    /// delivery attempt via [`BcastLedger::note_delivery`]
    /// (virtual-time engine: the sender crashes the instant the
    /// countdown hits zero) or truncate the delivery set up front
    /// (threaded ether: the sender crashes at broadcast time,
    /// `delivered` messages already in flight). The unified contract
    /// both realize: **the sender always crashes**, and at most
    /// `delivered` neighbors receive — fewer when some of the allowed
    /// slots fall on receivers that are themselves dead (a delivery
    /// attempt on a dead receiver consumes its slot on both backends).
    /// *Which* subset of neighbors receives remains
    /// scheduler-dependent nondeterminism the model explicitly
    /// permits (the engine consumes slots in scheduled-delivery-time
    /// order, the ether in neighbor order), so crash-plan
    /// cross-checks must not demand identical decisions unless the
    /// algorithm's outcome is insensitive to the surviving subset.
    PartialThenCrash {
        /// Deliveries allowed before the sender dies.
        delivered: usize,
    },
}

/// One atomic scheduler step at the MAC-layer seam.
///
/// Both execution backends realize exactly three kinds of externally
/// visible transition — deliver an in-flight broadcast to one
/// neighbor, ack a completed broadcast back to its sender, crash a
/// node — with timing attached. The exhaustive explorer in
/// `amacl-checker` enumerates executions as *untimed* sequences of
/// these choices, driving the same [`BcastLedger`] the backends share.
///
/// The derived `Ord` is meaningful: it sorts deliveries (by sender,
/// then receiver) before acks before crashes, which fixes the
/// deterministic enumeration order of
/// [`BcastLedger::enabled_choices`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MacChoice {
    /// Deliver the in-flight broadcast of `from` to neighbor `to`.
    Deliver {
        /// Sender slot whose broadcast is in flight.
        from: usize,
        /// Receiver slot that has not yet confirmed.
        to: usize,
    },
    /// Ack the slot's broadcast (every confirmation is in).
    Ack(usize),
    /// Crash the slot (consumes one unit of the crash budget).
    Crash(usize),
}

impl MacChoice {
    /// The baseline independence (commutation) relation the explorer's
    /// partial-order reduction uses: two independent choices, both
    /// enabled, may be executed in either order with the same
    /// resulting state, and neither disables the other.
    ///
    /// The relation is deliberately *conservative* (dependence is
    /// over-approximated — extra dependence only costs re-exploration,
    /// never soundness):
    ///
    /// * two deliveries commute iff they target different receivers
    ///   (same receiver ⇒ the receiver's callback order differs);
    /// * a delivery and an ack commute iff the acked node is neither
    ///   the delivery's sender (the ack consumes that sender's
    ///   obligation) nor its receiver (two callbacks at one node);
    /// * two acks commute iff they ack different nodes;
    /// * a crash commutes with nothing (it gates enabledness of every
    ///   choice touching the dead node, and releases obligations at
    ///   arbitrary other nodes).
    pub fn independent(self, other: MacChoice) -> bool {
        use MacChoice::*;
        match (self, other) {
            (Crash(_), _) | (_, Crash(_)) => false,
            (Deliver { to: b, .. }, Deliver { to: d, .. }) => b != d,
            (Deliver { from: a, to: b }, Ack(u)) | (Ack(u), Deliver { from: a, to: b }) => {
                u != a && u != b
            }
            (Ack(u), Ack(v)) => u != v,
        }
    }
}

/// Sentinel for "no sender recorded" in the dense broadcast table.
const NO_SENDER: usize = usize::MAX;

/// The shared delivery/ack/crash bookkeeping of the abstract MAC
/// layer.
///
/// Deliberately free of any notion of time or transport: the engine
/// schedules deliveries on a virtual-time queue, the threaded ether
/// pushes them through channels with jitter, and both consult this
/// ledger for the *semantic* questions — is this node crashed, does a
/// planned crash interrupt this broadcast, which confirmations gate
/// this ack, which acks does a node's death release.
///
/// All state lives in dense `Vec`-indexed tables: per-slot tables for
/// crash flags, broadcast counts, armed watches, partial-delivery
/// countdowns, and ack obligations (the model allows at most one
/// outstanding broadcast per node, so one slot of each suffices), plus
/// a broadcast-id → sender table resolving the id-keyed queries. No
/// hashing, no tree walks on the per-delivery path, and every list the
/// ledger returns is deterministic across runs and platforms.
#[derive(Clone, Debug)]
pub struct BcastLedger {
    crashed: Vec<bool>,
    counts: Vec<u64>,
    /// Armed mid-broadcast crash plans, per slot: (nth broadcast,
    /// deliveries allowed).
    watches: Vec<Option<(u64, usize)>>,
    /// Live partial-delivery countdown, per *sender* slot: (broadcast
    /// id, deliveries remaining before the sender crashes).
    active: Vec<Option<(u64, usize)>>,
    /// Outstanding ack obligation, per *sender* slot: (broadcast id,
    /// confirmations still awaited before the sender may be acked).
    awaiting: Vec<Option<(u64, BTreeSet<usize>)>>,
    /// Broadcast id → sender slot ([`NO_SENDER`] when unrecorded).
    /// Both backends allocate broadcast ids sequentially from zero, so
    /// this stays dense. Deliberate trade-off: the table grows one
    /// `usize` per broadcast ever admitted and is never truncated —
    /// 8 bytes/broadcast buys O(1) sender resolution on every
    /// delivery/confirm, and even a 10M-broadcast soak costs only
    /// ~80 MB. Reclaim (reset completed ids to `NO_SENDER` and trim
    /// the tail) is possible if soak memory ever matters.
    senders: Vec<usize>,
    /// Live entries in `watches` — O(1) answer for the parallel
    /// stepper's per-window eligibility check ([`BcastLedger::parallel_step_safe`]).
    armed_watches: usize,
    /// Live entries in `active` — same purpose.
    active_countdowns: usize,
}

impl BcastLedger {
    /// A ledger for `n` nodes, with no crashes planned.
    pub fn new(n: usize) -> Self {
        Self {
            crashed: vec![false; n],
            counts: vec![0; n],
            watches: vec![None; n],
            active: vec![None; n],
            awaiting: vec![None; n],
            senders: Vec::new(),
            armed_watches: 0,
            active_countdowns: 0,
        }
    }

    /// Plans a mid-broadcast crash: `slot` dies during its
    /// `nth_broadcast` (0-indexed), after exactly `delivered` neighbor
    /// deliveries. At most one plan per slot; a later call replaces an
    /// earlier one.
    pub fn arm_watch(&mut self, slot: usize, nth_broadcast: u64, delivered: usize) {
        if self.watches[slot].is_none() {
            self.armed_watches += 1;
        }
        self.watches[slot] = Some((nth_broadcast, delivered));
    }

    /// Records `from` as the sender of broadcast `bcast` in the dense
    /// id table.
    fn record_sender(&mut self, bcast: u64, from: usize) {
        let idx = bcast as usize;
        if idx >= self.senders.len() {
            self.senders.resize(idx + 1, NO_SENDER);
        }
        self.senders[idx] = from;
    }

    /// The recorded sender of `bcast`, if any.
    fn sender_of(&self, bcast: u64) -> Option<usize> {
        match self.senders.get(bcast as usize) {
            Some(&s) if s != NO_SENDER => Some(s),
            _ => None,
        }
    }

    /// Whether `slot` has crashed.
    pub fn is_crashed(&self, slot: usize) -> bool {
        self.crashed[slot]
    }

    /// Marks `slot` crashed. Returns `false` if it already was (the
    /// caller should then skip its crash side effects).
    pub fn mark_crashed(&mut self, slot: usize) -> bool {
        if self.crashed[slot] {
            false
        } else {
            self.crashed[slot] = true;
            true
        }
    }

    /// Broadcasts `slot` has issued so far.
    pub fn broadcast_count(&self, slot: usize) -> u64 {
        self.counts[slot]
    }

    /// Admits broadcast `bcast` from `from`: counts it against the
    /// sender's sequence and resolves any armed mid-broadcast crash
    /// plan into an [`Admission`].
    pub fn admit_broadcast(&mut self, from: usize, bcast: u64) -> Admission {
        self.record_sender(bcast, from);
        let nth = self.counts[from];
        self.counts[from] += 1;
        match self.watches[from] {
            Some((watch_nth, delivered)) if watch_nth == nth => {
                self.watches[from] = None;
                self.armed_watches -= 1;
                if delivered == 0 {
                    Admission::CrashImmediately
                } else {
                    if self.active[from].is_none() {
                        self.active_countdowns += 1;
                    }
                    self.active[from] = Some((bcast, delivered));
                    Admission::PartialThenCrash { delivered }
                }
            }
            _ => Admission::Deliver,
        }
    }

    /// Records one delivery of `bcast`. Returns `true` when this was
    /// the last delivery a [`Admission::PartialThenCrash`] countdown
    /// allows — the sender must crash now. Broadcasts without a
    /// countdown always return `false`.
    pub fn note_delivery(&mut self, bcast: u64) -> bool {
        let Some(sender) = self.sender_of(bcast) else {
            return false;
        };
        if let Some((b, rem)) = &mut self.active[sender] {
            if *b == bcast {
                *rem -= 1;
                if *rem == 0 {
                    self.active[sender] = None;
                    self.active_countdowns -= 1;
                    return true;
                }
            }
        }
        false
    }

    /// Whether a conservative time window may be stepped with one
    /// worker thread per shard *without* any cross-shard ledger
    /// access: `true` iff no mid-broadcast crash watch is still armed
    /// and no partial-delivery countdown is live.
    ///
    /// This is the ledger half of the parallel stepper's per-window
    /// eligibility check (O(1) — backed by counters maintained at the
    /// arm/admit/fire sites). The two tables it guards are the only
    /// ledger state a *delivery* can mutate across shard boundaries
    /// ([`BcastLedger::note_delivery`] ticks the **sender's** countdown
    /// from the **receiver's** step); when both are empty,
    /// `note_delivery` is a pure no-op for every broadcast in flight,
    /// and each worker can step its shard against nothing but its own
    /// [`LedgerShardSlice`]. A crashed sender's stale watch keeps a
    /// run serial forever — conservative, and correct.
    pub fn parallel_step_safe(&self) -> bool {
        self.armed_watches == 0 && self.active_countdowns == 0
    }

    /// Registers the ack obligation for `bcast`: `sender` may be acked
    /// once every slot in `awaiting` has confirmed. Returns `true`
    /// when the obligation is already complete (no awaited slots) and
    /// the sender should be acked immediately.
    pub fn register_ack_obligation(
        &mut self,
        bcast: u64,
        sender: usize,
        awaiting: BTreeSet<usize>,
    ) -> bool {
        if awaiting.is_empty() {
            true
        } else {
            self.record_sender(bcast, sender);
            self.awaiting[sender] = Some((bcast, awaiting));
            false
        }
    }

    /// Records that `by` confirmed `bcast` (it received and processed
    /// the message, or died and is excused). Returns the sender to ack
    /// when this was the final awaited confirmation; the ack must be
    /// suppressed if the sender is itself crashed by then, which the
    /// ledger checks for the caller.
    pub fn confirm(&mut self, bcast: u64, by: usize) -> Option<usize> {
        let sender = self.sender_of(bcast)?;
        let (b, awaiting) = self.awaiting[sender].as_mut()?;
        if *b != bcast {
            return None;
        }
        awaiting.remove(&by);
        if awaiting.is_empty() {
            self.awaiting[sender] = None;
            if self.crashed[sender] {
                None
            } else {
                Some(sender)
            }
        } else {
            None
        }
    }

    /// The ack obligation outstanding for `slot`'s in-flight
    /// broadcast: the broadcast id and the (ordered) set of neighbors
    /// that have not yet confirmed. `None` when no obligation is
    /// pending — either nothing is in flight, or every confirmation is
    /// in and the ack may fire.
    pub fn awaiting_confirmations(&self, slot: usize) -> Option<(u64, &BTreeSet<usize>)> {
        self.awaiting[slot].as_ref().map(|(b, set)| (*b, set))
    }

    /// Enumerates every scheduler choice the ledger state enables, in
    /// the deterministic [`MacChoice`] order: deliveries (by sender,
    /// then receiver), then acks, then crashes.
    ///
    /// `outstanding[s]` tells the ledger whether slot `s` has a
    /// broadcast in flight (the ledger itself forgets a broadcast the
    /// moment its obligation resolves — the *ack event* is the
    /// caller's to schedule); `crash_budget` is how many further
    /// crashes the adversary may inject. Concretely:
    ///
    /// * `Deliver { from, to }` for every live sender with a pending
    ///   obligation and every live, unconfirmed receiver `to` — a
    ///   crashed sender's remaining deliveries are cancelled, exactly
    ///   as both backends cancel them;
    /// * `Ack(s)` for every live `s` with a broadcast outstanding and
    ///   no pending obligation (all confirmations in);
    /// * `Crash(s)` for every live `s`, if budget remains.
    ///
    /// # Panics
    ///
    /// Panics if `outstanding.len()` differs from the node count.
    pub fn enabled_choices(&self, outstanding: &[bool], crash_budget: usize) -> Vec<MacChoice> {
        assert_eq!(outstanding.len(), self.crashed.len(), "one flag per slot");
        let mut out = Vec::new();
        for from in 0..self.crashed.len() {
            if self.crashed[from] {
                continue;
            }
            if let Some((_, awaiting)) = &self.awaiting[from] {
                for &to in awaiting {
                    if !self.crashed[to] {
                        out.push(MacChoice::Deliver { from, to });
                    }
                }
            }
        }
        for (slot, &in_flight) in outstanding.iter().enumerate() {
            if in_flight && !self.crashed[slot] && self.awaiting[slot].is_none() {
                out.push(MacChoice::Ack(slot));
            }
        }
        if crash_budget > 0 {
            for slot in 0..self.crashed.len() {
                if !self.crashed[slot] {
                    out.push(MacChoice::Crash(slot));
                }
            }
        }
        out
    }

    /// A 64-bit fingerprint of the complete ledger state — crash
    /// flags, broadcast counts, armed watches, live countdowns, ack
    /// obligations, and the id → sender table.
    ///
    /// Every hashed container is a `Vec` or `BTreeSet`, so the
    /// fingerprint is a pure function of ledger state with no
    /// iteration-order dependence; `DefaultHasher` uses fixed keys, so
    /// it is also stable across runs of the same build. The explorer
    /// combines it with a process-state hash to deduplicate (or merely
    /// count) converging interleavings.
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.crashed.hash(&mut h);
        self.counts.hash(&mut h);
        self.watches.hash(&mut h);
        self.active.hash(&mut h);
        self.awaiting.hash(&mut h);
        self.senders.hash(&mut h);
        h.finish()
    }

    /// A read-only per-shard view over the ledger's per-slot tables:
    /// the slot range `[lo, hi)` a shard owns, condensed to the counts
    /// a coordinator or report needs (how many of the shard's slots
    /// are crashed, how many crash watches are still armed, how many
    /// partial-delivery countdowns and ack obligations are live).
    ///
    /// The tables themselves stay whole — a delivery on one shard may
    /// legitimately tick a countdown owned by a *sender* on another
    /// (see [`BcastLedger::note_delivery`]) — so the view is the
    /// shard-local *summary*, not a partition of mutable state. It is
    /// what the sharded engine exposes per shard for imbalance
    /// reporting, and what a future thread-parallel stepper would
    /// promote into true per-shard ownership.
    pub fn shard_view(&self, lo: usize, hi: usize) -> LedgerShardView {
        assert!(lo <= hi && hi <= self.crashed.len(), "slot range in bounds");
        LedgerShardView {
            slots: hi - lo,
            crashed: self.crashed[lo..hi].iter().filter(|&&c| c).count(),
            armed_watches: self.watches[lo..hi].iter().flatten().count(),
            active_countdowns: self.active[lo..hi].iter().flatten().count(),
            pending_obligations: self.awaiting[lo..hi].iter().flatten().count(),
        }
    }

    /// Splits the ledger's per-slot hot tables into disjoint `&mut`
    /// slices, one per shard — the **ownership half** of the
    /// thread-per-shard stepper's contract (the summary half is
    /// [`BcastLedger::shard_view`]).
    ///
    /// `bounds` must be the shard map's contiguous `(lo, hi)` slot
    /// ranges, in order, exactly covering `[0, n)`. Each returned
    /// [`LedgerShardSlice`] carries exclusive references into the
    /// crash-flag table for its range, so the borrow checker itself
    /// enforces the stepping invariant: **a worker may consult only
    /// its own shard's slice**. Everything cross-shard — payload
    /// refcounts for messages whose sender lives elsewhere,
    /// mid-broadcast countdowns, ack obligations — reaches a shard as
    /// a typed message through the engine's per-edge mailboxes (or is
    /// proven absent for the window by
    /// [`BcastLedger::parallel_step_safe`]), never by reaching into
    /// another shard's tables.
    ///
    /// # Panics
    ///
    /// Panics when `bounds` is not a contiguous, in-order, exact cover
    /// of the slot range.
    pub fn shard_slices(&mut self, bounds: &[(usize, usize)]) -> Vec<LedgerShardSlice<'_>> {
        let n = self.crashed.len();
        let mut out = Vec::with_capacity(bounds.len());
        let mut rest: &mut [bool] = &mut self.crashed;
        let mut consumed = 0usize;
        for &(lo, hi) in bounds {
            assert!(lo == consumed && hi >= lo, "bounds must tile [0, n)");
            let (head, tail) = rest.split_at_mut(hi - lo);
            out.push(LedgerShardSlice {
                base: lo,
                crashed: head,
            });
            rest = tail;
            consumed = hi;
        }
        assert_eq!(consumed, n, "bounds must cover every slot");
        out
    }

    /// Releases every obligation awaiting the dead node `dead` (acks
    /// never wait on crashed neighbors). Returns the `(broadcast,
    /// sender)` pairs whose acks this completes, in deterministic
    /// (broadcast id) order.
    pub fn release_obligations_of(&mut self, dead: usize) -> Vec<(u64, usize)> {
        let mut completed: Vec<(u64, usize)> = Vec::new();
        for (sender, slot_ob) in self.awaiting.iter_mut().enumerate() {
            if let Some((bcast, awaiting)) = slot_ob {
                awaiting.remove(&dead);
                if awaiting.is_empty() {
                    completed.push((*bcast, sender));
                    *slot_ob = None;
                }
            }
        }
        completed.sort_unstable();
        completed.retain(|&(_, sender)| !self.crashed[sender]);
        completed
    }
}

/// Shard-local summary of the [`BcastLedger`]'s per-slot tables; see
/// [`BcastLedger::shard_view`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LedgerShardView {
    /// Slots the shard owns.
    pub slots: usize,
    /// Crashed slots among them.
    pub crashed: usize,
    /// Mid-broadcast crash watches still armed.
    pub armed_watches: usize,
    /// Partial-delivery countdowns currently live.
    pub active_countdowns: usize,
    /// Ack obligations still awaiting confirmations.
    pub pending_obligations: usize,
}

impl LedgerShardView {
    /// Slots still alive in the shard.
    pub fn alive(&self) -> usize {
        self.slots - self.crashed
    }
}

/// Exclusive per-shard ownership of the [`BcastLedger`]'s hot tables
/// for one shard's contiguous slot range; see
/// [`BcastLedger::shard_slices`].
///
/// A slice is handed to exactly one worker thread for the duration of
/// one conservative time window. The invariants that make this sound:
///
/// * **Only the owning worker touches the slice.** The split is by
///   `&mut` borrow, so this is compiler-enforced, not convention.
/// * **Crash flags cannot change inside a parallel window.** Windows
///   containing crash events fall back to the merged serial path, and
///   [`BcastLedger::parallel_step_safe`] guarantees no mid-broadcast
///   countdown can fire — so reading the local flags is reading frozen
///   truth, and `to`-side flags are all a delivery step ever needs
///   (a `Receive` event always targets the shard that owns it).
/// * **Cross-shard effects travel as messages.** Payloads whose sender
///   lives on another shard arrive as imported clones keyed by event
///   id; countdowns and obligations are absent by eligibility. No
///   worker ever reads, let alone writes, a sibling's range.
#[derive(Debug)]
pub struct LedgerShardSlice<'a> {
    /// First global slot of the owned range.
    base: usize,
    /// Crash flags for the owned range (`crashed[slot - base]`).
    crashed: &'a mut [bool],
}

impl LedgerShardSlice<'_> {
    /// Whether the (globally indexed, shard-owned) `slot` has crashed.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is outside the owned range — a cross-shard
    /// lookup is a stepping-contract violation, never a query.
    #[inline]
    pub fn is_crashed(&self, slot: usize) -> bool {
        self.crashed[slot - self.base]
    }

    /// First global slot of the owned range.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Number of slots owned.
    pub fn len(&self) -> usize {
        self.crashed.len()
    }

    /// `true` when the shard owns no slots (never produced by a valid
    /// shard map, but `len` without `is_empty` trips clippy and
    /// callers alike).
    pub fn is_empty(&self) -> bool {
        self.crashed.is_empty()
    }
}

/// Scheduler selection for an engine-backed [`MacLayer`].
#[derive(Clone, Copy, Debug)]
pub enum BackendSched {
    /// Lockstep rounds with the given `F_ack` (see
    /// [`SynchronousScheduler`]).
    Synchronous(u64),
    /// Seeded random delays under the given `F_ack` bound.
    Random {
        /// The scheduler's `F_ack` bound.
        f_ack: u64,
        /// Scheduler seed.
        seed: u64,
    },
    /// Every broadcast takes the full `F_ack` (the worst-case
    /// adversary).
    MaxDelay(u64),
}

impl BackendSched {
    /// Packages this selection as a [`SchedulerFactory`].
    pub fn factory(self) -> SchedulerFactory {
        Arc::new(move || match self {
            BackendSched::Synchronous(f_ack) => Box::new(SynchronousScheduler::new(f_ack)),
            BackendSched::Random { f_ack, seed } => Box::new(RandomScheduler::new(f_ack, seed)),
            BackendSched::MaxDelay(f_ack) => Box::new(MaxDelayScheduler::new(f_ack)),
        })
    }
}

/// Produces a fresh boxed [`Scheduler`] for each execution.
///
/// Schedulers are stateful (per-broadcast counters, RNG streams), so a
/// backend that runs many executions needs a *factory*, not an
/// instance: every [`MacLayer::execute`] call starts from a pristine
/// adversary. The factory is `Send + Sync` behind an [`Arc`] so one
/// backend description can fan out across the parallel multi-seed
/// driver.
pub type SchedulerFactory = Arc<dyn Fn() -> Box<dyn Scheduler> + Send + Sync>;

/// The discrete-event engine packaged as a [`MacLayer`] backend.
///
/// Owns everything needed to build a fresh [`SimBuilder`] per
/// [`execute`](MacLayer::execute) call — including an arbitrary
/// [`SchedulerFactory`] (any adversary: partitions, scripted
/// worst cases, dual bounds, ...) and a [`CrashPlan`] — so one
/// `SimBackend` can run many algorithms (or the same algorithm
/// repeatedly) with identical settings — exactly what the conformance
/// cross-check and adversarial scenario sweeps need.
#[derive(Clone)]
pub struct SimBackend {
    topo: Topology,
    sched: SchedulerFactory,
    sched_label: String,
    cfg: EngineConfig,
    max_time: Time,
}

impl fmt::Debug for SimBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimBackend")
            .field("topo", &self.topo)
            .field("sched", &self.sched_label)
            .field("crashes", &self.cfg.crash_plan)
            .field("seed", &self.cfg.seed)
            .field("max_time", &self.max_time)
            .field("queue", &self.cfg.queue_core)
            .field("shards", &self.cfg.shards.get())
            .field("threads", &self.cfg.threads.get())
            .field("window_batch", &self.cfg.window_batch)
            .finish()
    }
}

impl SimBackend {
    /// A backend over `topo` driven by one of the stock schedulers.
    pub fn new(topo: Topology, sched: BackendSched) -> Self {
        let label = format!("{sched:?}");
        Self::with_factory(topo, label, sched.factory())
    }

    /// A backend over `topo` driven by an arbitrary scheduler factory.
    /// `label` names the adversary in `Debug` output and reports.
    /// Engine knobs start from [`EngineConfig::from_env`].
    pub fn with_factory(
        topo: Topology,
        label: impl Into<String>,
        factory: SchedulerFactory,
    ) -> Self {
        Self {
            topo,
            sched: factory,
            sched_label: label.into(),
            cfg: EngineConfig::from_env(),
            max_time: Time(10_000_000),
        }
    }

    /// Replaces the whole engine configuration in one call; the
    /// individual fluent knobs below are thin delegates onto the same
    /// stored [`EngineConfig`], so the two styles compose.
    pub fn config(mut self, cfg: EngineConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The engine configuration every execution of this backend uses.
    pub fn engine_config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Sets the per-node randomness seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg = self.cfg.seed(seed);
        self
    }

    /// Selects the engine's event-queue core. Both cores realize the
    /// identical execution (the conformance sweep proves it); this is
    /// a performance knob, surfaced here so cross-checks can prove the
    /// equivalence per scenario.
    pub fn queue_core(mut self, kind: QueueCoreKind) -> Self {
        self.cfg = self.cfg.queue_core(kind);
        self
    }

    /// The queue core this backend builds engines on.
    pub fn queue_kind(&self) -> QueueCoreKind {
        self.cfg.queue_core
    }

    /// Shards every execution across `shards` workers via the
    /// conservative time-window engine. Like the queue core, sharding
    /// is observably identity-preserving (byte-identical traces and
    /// reports at every shard count), surfaced here so cross-checks
    /// can prove the equivalence per scenario.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn shards(mut self, shards: usize) -> Self {
        self.cfg = self.cfg.shards(shards);
        self
    }

    /// The shard count this backend builds engines on.
    pub fn shard_count(&self) -> usize {
        self.cfg.shards.get()
    }

    /// Steps every sharded execution with up to `threads` worker
    /// threads (one per shard, capped at the shard count) inside each
    /// conservative time window. Like sharding itself, threading is
    /// observably identity-preserving — byte-identical traces and
    /// reports at every thread count — so this too is purely a
    /// performance knob, surfaced here so cross-checks can prove the
    /// equivalence per scenario.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg = self.cfg.threads(threads);
        self
    }

    /// The worker-thread count this backend builds engines on.
    pub fn thread_count(&self) -> usize {
        self.cfg.threads.get()
    }

    /// Caps how many consecutive parallel windows the pooled engine
    /// runs per worker wakeup (a superstep). Pure wake-policy — every
    /// batch size yields byte-identical traces and reports — so like
    /// `threads` this is a performance knob, surfaced so cross-checks
    /// can prove the equivalence per scenario.
    pub fn window_batch(mut self, batch: WindowBatch) -> Self {
        self.cfg = self.cfg.window_batch(batch);
        self
    }

    /// The superstep window-batch cap this backend builds engines on.
    pub fn window_batch_cap(&self) -> WindowBatch {
        self.cfg.window_batch
    }

    /// Sets the virtual-time horizon.
    pub fn max_time(mut self, t: Time) -> Self {
        self.max_time = t;
        self
    }

    /// Schedules crash failures for every execution of this backend.
    pub fn crash_plan(mut self, plan: CrashPlan) -> Self {
        self.cfg = self.cfg.crash_plan(plan);
        self
    }

    /// The topology this backend runs over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The adversary label (for reports).
    pub fn sched_label(&self) -> &str {
        &self.sched_label
    }

    /// Runs one execution and also returns the full engine report
    /// (metrics, decision times) alongside the portable [`MacReport`].
    pub fn execute_full<P: Process>(
        &mut self,
        init: &mut dyn FnMut(Slot) -> P,
    ) -> (MacReport, RunReport) {
        let mut sim = self.build_sim(init, false);
        let report = sim.run();
        (MacReport::from_run(&report), report)
    }

    /// Runs one execution with event tracing enabled and returns the
    /// recorded [`Trace`] alongside the reports — the byte-identity
    /// witness the sharded-engine conformance checks compare.
    pub fn execute_traced<P: Process>(
        &mut self,
        init: &mut dyn FnMut(Slot) -> P,
    ) -> (MacReport, RunReport, Trace) {
        let mut sim = self.build_sim(init, true);
        let report = sim.run();
        (MacReport::from_run(&report), report, sim.trace().clone())
    }

    fn build_sim<P: Process>(
        &mut self,
        init: &mut dyn FnMut(Slot) -> P,
        trace: bool,
    ) -> crate::sim::engine::Sim<P> {
        SimBuilder::new(self.topo.clone(), init)
            .config(self.cfg.clone())
            .max_time(self.max_time)
            .scheduler((self.sched)())
            .trace(trace)
            .build()
    }
}

impl<P: Process> MacLayer<P> for SimBackend {
    fn backend_name(&self) -> &'static str {
        "sim"
    }

    fn execute(&mut self, init: &mut dyn FnMut(Slot) -> P) -> MacReport {
        self.execute_full(init).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Payload;
    use crate::proc::Context;

    #[test]
    fn ledger_admits_and_counts() {
        let mut ledger = BcastLedger::new(3);
        assert_eq!(ledger.admit_broadcast(0, 0), Admission::Deliver);
        assert_eq!(ledger.admit_broadcast(0, 1), Admission::Deliver);
        assert_eq!(ledger.broadcast_count(0), 2);
        assert_eq!(ledger.broadcast_count(1), 0);
    }

    #[test]
    fn ledger_watch_interrupts_the_right_broadcast() {
        let mut ledger = BcastLedger::new(2);
        ledger.arm_watch(0, 1, 2);
        assert_eq!(ledger.admit_broadcast(0, 0), Admission::Deliver);
        assert_eq!(
            ledger.admit_broadcast(0, 1),
            Admission::PartialThenCrash { delivered: 2 }
        );
        // The countdown fires on the second delivery.
        assert!(!ledger.note_delivery(1));
        assert!(ledger.note_delivery(1));
        // Later broadcasts (were the sender alive) admit normally.
        assert_eq!(ledger.admit_broadcast(0, 2), Admission::Deliver);
    }

    #[test]
    fn ledger_zero_delivery_watch_crashes_immediately() {
        let mut ledger = BcastLedger::new(1);
        ledger.arm_watch(0, 0, 0);
        assert_eq!(ledger.admit_broadcast(0, 0), Admission::CrashImmediately);
    }

    #[test]
    fn ledger_ack_obligation_lifecycle() {
        let mut ledger = BcastLedger::new(4);
        let awaiting: BTreeSet<usize> = [1, 2, 3].into();
        assert!(!ledger.register_ack_obligation(0, 0, awaiting));
        assert_eq!(ledger.confirm(0, 1), None);
        assert_eq!(ledger.confirm(0, 2), None);
        assert_eq!(ledger.confirm(0, 3), Some(0));
        // Completed obligations are gone.
        assert_eq!(ledger.confirm(0, 3), None);
        // Empty obligations complete immediately.
        assert!(ledger.register_ack_obligation(1, 2, BTreeSet::new()));
    }

    #[test]
    fn ledger_death_releases_obligations_in_order() {
        let mut ledger = BcastLedger::new(4);
        ledger.register_ack_obligation(7, 1, [3].into());
        ledger.register_ack_obligation(2, 0, [3].into());
        ledger.register_ack_obligation(5, 2, [0, 3].into());
        ledger.mark_crashed(3);
        let released = ledger.release_obligations_of(3);
        // Broadcasts 2 and 7 complete (deterministic id order); 5 still
        // awaits node 0.
        assert_eq!(released, vec![(2, 0), (7, 1)]);
        assert_eq!(ledger.confirm(5, 0), Some(2));
    }

    #[test]
    fn ledger_suppresses_acks_to_crashed_senders() {
        let mut ledger = BcastLedger::new(3);
        ledger.register_ack_obligation(0, 0, [1, 2].into());
        ledger.confirm(0, 1);
        ledger.mark_crashed(0);
        assert_eq!(ledger.confirm(0, 2), None);
    }

    #[test]
    fn enabled_choices_enumerate_in_deterministic_order() {
        let mut ledger = BcastLedger::new(3);
        // Slot 0 broadcasts to {1, 2}; slot 2 broadcasts to {0} and is
        // fully confirmed (ack pending).
        assert_eq!(ledger.admit_broadcast(0, 0), Admission::Deliver);
        ledger.register_ack_obligation(0, 0, [1, 2].into());
        assert_eq!(ledger.admit_broadcast(2, 1), Admission::Deliver);
        ledger.register_ack_obligation(1, 2, [0].into());
        assert_eq!(ledger.confirm(1, 0), Some(2));
        let outstanding = [true, false, true];
        assert_eq!(
            ledger.enabled_choices(&outstanding, 1),
            vec![
                MacChoice::Deliver { from: 0, to: 1 },
                MacChoice::Deliver { from: 0, to: 2 },
                MacChoice::Ack(2),
                MacChoice::Crash(0),
                MacChoice::Crash(1),
                MacChoice::Crash(2),
            ]
        );
        // Budget exhausted: no crash choices.
        assert_eq!(ledger.enabled_choices(&outstanding, 0).len(), 3);
        // A crashed sender's remaining deliveries are cancelled, and
        // crashed receivers drop out of delivery sets.
        ledger.mark_crashed(0);
        assert_eq!(
            ledger.enabled_choices(&outstanding, 0),
            vec![MacChoice::Ack(2)]
        );
    }

    #[test]
    fn choice_independence_is_symmetric_and_conservative() {
        use MacChoice::*;
        let d01 = Deliver { from: 0, to: 1 };
        let d10 = Deliver { from: 1, to: 0 };
        let d21 = Deliver { from: 2, to: 1 };
        // Different receivers commute; same receiver does not.
        assert!(d01.independent(d10));
        assert!(!d01.independent(d21));
        // Acks commute with deliveries not touching the acked node.
        assert!(Ack(2).independent(d01));
        assert!(
            !Ack(0).independent(d01),
            "ack consumes sender 0's obligation"
        );
        assert!(!Ack(1).independent(d01), "two callbacks at node 1");
        assert!(Ack(0).independent(Ack(1)));
        // Nothing commutes with a crash, or with itself.
        for c in [d01, d10, Ack(0), Crash(2)] {
            assert!(!c.independent(Crash(0)));
            assert!(!Crash(0).independent(c));
            assert!(!c.independent(c));
        }
        // Symmetry over a small universe.
        let all = [d01, d10, d21, Ack(0), Ack(1), Crash(1)];
        for a in all {
            for b in all {
                assert_eq!(a.independent(b), b.independent(a), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn ledger_fingerprint_tracks_state() {
        let mut a = BcastLedger::new(3);
        let mut b = BcastLedger::new(3);
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.admit_broadcast(0, 0);
        assert_ne!(a.fingerprint(), b.fingerprint());
        b.admit_broadcast(0, 0);
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.register_ack_obligation(0, 0, [1, 2].into());
        b.register_ack_obligation(0, 0, [1, 2].into());
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Confirmations in a different interleaving converge to the
        // same fingerprint once the same set has confirmed.
        a.confirm(0, 1);
        b.confirm(0, 2);
        assert_ne!(a.fingerprint(), b.fingerprint());
        a.confirm(0, 2);
        b.confirm(0, 1);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let snap = a.fingerprint();
        assert_eq!(a.clone().fingerprint(), snap, "clone preserves state");
    }

    #[test]
    fn awaiting_confirmations_reports_the_obligation() {
        let mut ledger = BcastLedger::new(3);
        assert_eq!(ledger.awaiting_confirmations(0), None);
        ledger.register_ack_obligation(7, 0, [1, 2].into());
        let (bcast, set) = ledger.awaiting_confirmations(0).unwrap();
        assert_eq!(bcast, 7);
        assert_eq!(set.iter().copied().collect::<Vec<_>>(), vec![1, 2]);
        ledger.confirm(7, 1);
        ledger.confirm(7, 2);
        assert_eq!(ledger.awaiting_confirmations(0), None);
    }

    /// Minimal process: broadcast once, decide own value on ack.
    #[derive(Clone, Debug)]
    struct Once(Value);
    #[derive(Clone, Copy, Debug)]
    struct Ping;
    impl Payload for Ping {
        fn id_count(&self) -> usize {
            0
        }
    }
    impl Process for Once {
        type Msg = Ping;
        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            ctx.broadcast(Ping);
        }
        fn on_receive(&mut self, _m: Ping, _ctx: &mut Context<'_, Ping>) {}
        fn on_ack(&mut self, ctx: &mut Context<'_, Ping>) {
            ctx.decide(self.0);
        }
    }

    #[test]
    fn sim_backend_runs_through_the_trait() {
        let mut backend = SimBackend::new(
            Topology::clique(4),
            BackendSched::Random { f_ack: 3, seed: 5 },
        );
        let layer: &mut dyn MacLayer<Once> = &mut backend;
        assert_eq!(layer.backend_name(), "sim");
        let report = layer.execute(&mut |s| Once(s.index() as Value));
        assert!(report.all_decided);
        assert_eq!(report.broadcasts, 4);
        assert_eq!(report.decisions.len(), 4);
        for (i, d) in report.decisions.iter().enumerate() {
            assert_eq!(*d, Some(i as Value));
        }
        assert_eq!(report.agreement_value(), None);
    }

    #[test]
    fn sim_backend_takes_arbitrary_scheduler_factories() {
        use crate::sim::sched::partition::{DirectedCut, EdgeDelayScheduler};

        // A partition healing at t=40: node 0's broadcasts to node 1
        // are withheld until then, so node 1's decision (on ack of its
        // own broadcast) is unaffected but node 0's ack — which waits
        // for the stalled delivery — lands at the release.
        let factory: SchedulerFactory = Arc::new(|| {
            Box::new(EdgeDelayScheduler::new(
                SynchronousScheduler::new(1),
                vec![DirectedCut::new([Slot(0)], [Slot(1)], Time(40))],
            ))
        });
        let mut backend = SimBackend::with_factory(Topology::clique(2), "partition", factory);
        assert_eq!(backend.sched_label(), "partition");
        let (report, full) = backend.execute_full(&mut |s| Once(s.index() as Value));
        assert!(report.all_decided);
        // Node 0's ack stalls with the cut; node 1 acks in one tick.
        assert_eq!(full.decisions[0].unwrap().time, Time(40));
        assert_eq!(full.decisions[1].unwrap().time, Time(1));
        // The factory hands out a *fresh* adversary per execution:
        // the second run is bit-identical, not time-shifted.
        let (again, _) = backend.execute_full(&mut |s| Once(s.index() as Value));
        assert_eq!(report, again);
    }

    #[test]
    fn sim_backend_carries_a_crash_plan() {
        use crate::sim::crash::{CrashPlan, CrashSpec};

        let mut backend = SimBackend::new(Topology::clique(4), BackendSched::Synchronous(2))
            .crash_plan(CrashPlan::new(vec![CrashSpec::AtTime {
                slot: Slot(0),
                time: Time(1),
            }]));
        let report = MacLayer::<Once>::execute(&mut backend, &mut |s| Once(s.index() as Value));
        // Node 0 dies before its ack (acks take 2 ticks): undecided.
        assert!(report.all_decided, "survivors decide");
        assert_eq!(report.decisions[0], None);
        for i in 1..4 {
            assert_eq!(report.decisions[i], Some(i as Value));
        }
        // The plan applies to every execution of the backend.
        let again = MacLayer::<Once>::execute(&mut backend, &mut |s| Once(s.index() as Value));
        assert_eq!(report, again);
    }

    #[test]
    fn sim_backend_is_reusable_and_deterministic() {
        let mut backend = SimBackend::new(
            Topology::random_connected(8, 0.3, 1),
            BackendSched::Random { f_ack: 4, seed: 9 },
        )
        .seed(9);
        let a = MacLayer::<Once>::execute(&mut backend, &mut |s| Once(s.index() as Value));
        let b = MacLayer::<Once>::execute(&mut backend, &mut |s| Once(s.index() as Value));
        assert_eq!(a, b);
    }
}
