//! Property tests over the valid-step machine: random valid schedules
//! of Two-Phase Consensus always terminate with agreement and validity
//! when crash-free, and the machine's bookkeeping stays coherent under
//! arbitrary crash timing.

use amacl_core::two_phase::TwoPhase;
use amacl_lowerbounds::step::{Step, StepMachine};
use proptest::prelude::*;

fn machine(inputs: &[u64]) -> StepMachine<TwoPhase> {
    StepMachine::new(inputs.iter().map(|&v| TwoPhase::new(v)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_valid_schedules_terminate_with_agreement(
        n in 2usize..5,
        input_bits in 0u64..32,
        choices in proptest::collection::vec(0usize..8, 0..400),
    ) {
        let inputs: Vec<u64> = (0..n).map(|i| (input_bits >> i) & 1).collect();
        let mut m = machine(&inputs);
        // Drive with the random choice stream, then round-robin to
        // completion.
        let stream = choices.iter().copied().chain(std::iter::repeat(0)).take(2000);
        for raw in stream {
            if m.all_alive_decided() {
                break;
            }
            let steps = m.valid_steps();
            prop_assert!(!steps.is_empty(), "live undecided nodes must have steps");
            m.apply(steps[raw % steps.len()]);
        }
        prop_assert!(m.all_alive_decided(), "crash-free schedule did not terminate");
        let decided = m.decided_values();
        prop_assert_eq!(decided.len(), 1, "agreement violated: {:?}", m.decisions());
        let v = *decided.iter().next().unwrap();
        prop_assert!(inputs.contains(&v), "validity violated: decided {v}");
    }

    #[test]
    fn one_crash_preserves_safety_in_the_step_machine(
        n in 2usize..5,
        input_bits in 0u64..32,
        crash_at in 0usize..40,
        crash_node in 0usize..5,
        choices in proptest::collection::vec(0usize..8, 0..300),
    ) {
        let inputs: Vec<u64> = (0..n).map(|i| (input_bits >> i) & 1).collect();
        let crash_node = crash_node % n;
        let mut m = machine(&inputs);
        let mut idx = 0;
        let mut crashed = false;
        for step_no in 0..1500 {
            if m.all_alive_decided() {
                break;
            }
            if !crashed && step_no == crash_at {
                crashed = true;
                if !m.is_crashed(crash_node) {
                    m.apply(Step::Crash(crash_node));
                    continue;
                }
            }
            let steps = m.valid_steps();
            if steps.is_empty() {
                break; // stuck: allowed with a crash (termination loss)
            }
            let pick = if idx < choices.len() { choices[idx] % steps.len() } else { 0 };
            idx += 1;
            m.apply(steps[pick]);
        }
        // Safety must hold regardless of what the crash did.
        let decided = m.decided_values();
        prop_assert!(decided.len() <= 1, "agreement violated under crash");
        for v in decided {
            prop_assert!(inputs.contains(&v), "validity violated under crash");
        }
    }

    #[test]
    fn fingerprints_are_schedule_sensitive(
        choices_a in proptest::collection::vec(0usize..4, 1..30),
        choices_b in proptest::collection::vec(0usize..4, 1..30),
    ) {
        // Two machines driven by the same choice stream stay
        // fingerprint-identical; different streams usually diverge
        // (here we only assert the first property, which must be
        // exact).
        let drive = |choices: &[usize]| {
            let mut m = machine(&[0, 1, 1]);
            for &c in choices {
                if m.all_alive_decided() {
                    break;
                }
                let steps = m.valid_steps();
                if steps.is_empty() {
                    break;
                }
                m.apply(steps[c % steps.len()]);
            }
            m.fingerprint()
        };
        prop_assert_eq!(drive(&choices_a), drive(&choices_a));
        prop_assert_eq!(drive(&choices_b), drive(&choices_b));
    }
}
