//! A concrete crash schedule that defeats Two-Phase Consensus
//! (Theorem 3.2 made tangible).
//!
//! The impossibility proof is abstract; this module exhibits the
//! failure directly. Node 0 (input 0) races through phase 1, chooses
//! status `decided(0)`, and **crashes at the instant its phase-2
//! broadcast starts** — delivering it to nobody. Node 1 has already
//! heard node 0's phase-1 message, so node 0 is on node 1's witness
//! list, and node 1 waits forever for a phase-2 message that will never
//! come: termination is lost, exactly the property the paper proves no
//! deterministic algorithm can preserve under one crash.

use amacl_core::two_phase::TwoPhase;
use amacl_core::verify::{check_consensus, ConsensusCheck};
use amacl_model::prelude::*;

/// Outcome of the crash demonstration.
#[derive(Clone, Debug)]
pub struct CrashDemoOutcome {
    /// The run with the crash: expected to end `Quiescent` with node 1
    /// undecided.
    pub with_crash: ConsensusCheck,
    /// Whether the crashed run ended quiescent (nothing left to do,
    /// yet not everyone decided).
    pub with_crash_quiescent: bool,
    /// The same schedule without the crash: expected clean consensus.
    pub without_crash: ConsensusCheck,
}

/// The scripted schedule: node 0 fast, node 1's first broadcast slow
/// (so node 1 sees node 0's value before choosing its status).
fn schedule() -> ScriptedScheduler {
    ScriptedScheduler::new(1)
        .delay(Slot(0), 0, 1)
        .delay(Slot(0), 1, 1)
        .delay(Slot(1), 0, 3)
        .delay(Slot(1), 1, 1)
}

/// Runs the demonstration.
pub fn run_crash_demo() -> CrashDemoOutcome {
    let inputs = [0u64, 1];

    let run = |crashes: CrashPlan| -> (RunReport, bool) {
        let mut sim = SimBuilder::new(Topology::clique(2), |s| TwoPhase::new(inputs[s.index()]))
            .scheduler(schedule())
            .crashes(crashes)
            .build();
        let report = sim.run();
        let quiescent = report.outcome == RunOutcome::Quiescent;
        (report, quiescent)
    };

    // Crash node 0 during its second broadcast (phase 2), before any
    // delivery.
    let crash = CrashPlan::new(vec![CrashSpec::MidBroadcast {
        slot: Slot(0),
        nth_broadcast: 1,
        delivered: 0,
    }]);
    let (crashed_report, with_crash_quiescent) = run(crash);
    let with_crash = check_consensus(&inputs, &crashed_report, &[true, false]);

    let (clean_report, _) = run(CrashPlan::none());
    let without_crash = check_consensus(&inputs, &clean_report, &[]);

    CrashDemoOutcome {
        with_crash,
        with_crash_quiescent,
        without_crash,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_strands_the_survivor() {
        let out = run_crash_demo();
        assert!(
            !out.with_crash.termination,
            "node 1 should wait forever for the dead witness"
        );
        assert!(out.with_crash_quiescent, "nothing left to deliver");
        // Safety is intact — nobody decided wrongly, nobody decided at all.
        assert!(out.with_crash.agreement && out.with_crash.validity);
    }

    #[test]
    fn same_schedule_without_crash_is_clean() {
        let out = run_crash_demo();
        out.without_crash.assert_ok();
        assert_eq!(out.without_crash.decided, Some(0));
    }
}
