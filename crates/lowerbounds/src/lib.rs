//! # `amacl-lowerbounds`: the paper's lower bounds as executable code
//!
//! Newport's paper proves four lower bounds for consensus in the
//! abstract MAC layer model. Each proof constructs an adversary — a
//! topology, a scheduler, sometimes a crash — and argues by
//! indistinguishability. This crate turns each construction into code
//! that *runs* and mechanically checks the invariant the proof rests
//! on:
//!
//! * [`step`] / [`bivalence`] — **Theorem 3.2** (no deterministic
//!   consensus with one crash): a step machine implementing the proof's
//!   *valid step* semantics, plus an exhaustive explorer that verifies
//!   bivalent initial configurations exist, finds the *critical
//!   configurations* whose absence Lemma 3.1 proves for any
//!   crash-tolerant algorithm, and exhibits the stuck schedules where a
//!   crash strands a live node.
//! * [`crash_demo`] — a concrete mid-broadcast crash schedule under
//!   which Two-Phase Consensus loses termination, showing why the
//!   paper's upper bounds assume crash freedom.
//! * [`anonymity`] — **Theorem 3.3** (unique ids required): runs an
//!   anonymous algorithm on Figure 1's Networks A and B, checks the
//!   `S_u` state-copy indistinguishability of Lemma 3.6 step by step,
//!   and exhibits the agreement violation.
//! * [`unknown_n`] — **Theorem 3.9** (knowledge of `n` required in
//!   multihop networks): runs an id-using, `n`-free algorithm on
//!   Figure 2's `K_D` under the semi-synchronous scheduler and exhibits
//!   the split decision.
//! * [`time_lb`] — **Theorem 3.10** (`Ω(D * F_ack)` time): measures
//!   that correct algorithms never decide before `floor(D/2) * F_ack`
//!   under the max-delay adversary, and shows the partition violation
//!   for an algorithm that tries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anonymity;
pub mod bivalence;
pub mod crash_demo;
pub mod step;
pub mod time_lb;
pub mod unknown_n;
