//! Theorem 3.3, executably: anonymous algorithms cannot solve
//! consensus, even knowing `n` and `D`.
//!
//! The proof runs an anonymous algorithm in three executions:
//!
//! * `alpha_B^0` — Network B (Figure 1), all inputs 0, synchronous
//!   scheduler. Terminates by some step `t` deciding 0 (Lemma 3.5).
//! * `alpha_B^1` — ditto with inputs 1, deciding 1.
//! * `alpha_A` — Network A, gadget 0 with inputs 0, gadget 1 with
//!   inputs 1, and every message *from* the bridge `q` withheld for `t`
//!   steps.
//!
//! Because Network B is a 3-lift of the gadget (property (*)), a gadget
//! node in `alpha_A` passes through exactly the same states as its
//! three copies `S_u` in `alpha_B^b` for the first `t` steps
//! (Lemma 3.6) — so gadget 0 decides 0 and gadget 1 decides 1 inside
//! the *same* network: agreement violated.
//!
//! [`run_anonymity_demo`] discovers `t` empirically (running the B
//! executions to completion, as Lemma 3.5 licenses), then re-executes
//! all three runs in lockstep, checks the per-step state equality of
//! Lemma 3.6 mechanically, and returns the violation verdict.

use amacl_core::baselines::anonymous_flood::SyncFloodMin;
use amacl_core::verify::{check_consensus, ConsensusCheck};
use amacl_model::prelude::*;
use amacl_model::sim::engine::{RunOutcome, RunReport};
use amacl_model::topo::gadgets::{Fig1, GadgetVertex};

/// Result of the Theorem 3.3 demonstration.
#[derive(Clone, Debug)]
pub struct AnonymityOutcome {
    /// Realized network size `n'` (Claim 3.4).
    pub n_prime: usize,
    /// Realized diameter of both networks (Claim 3.4).
    pub diameter: usize,
    /// The termination step `t` of the Network B executions
    /// (Lemma 3.5), discovered by running them.
    pub t: u64,
    /// Per-step state comparisons performed for Lemma 3.6.
    pub states_compared: usize,
    /// Whether every comparison matched.
    pub indistinguishable: bool,
    /// Consensus verdict of `alpha_A` — agreement is expected to be
    /// violated.
    pub alpha_a: ConsensusCheck,
    /// Network B verdicts (expected clean, deciding their input).
    pub alpha_b: [ConsensusCheck; 2],
}

/// State fingerprint of one `SyncFloodMin` node (everything the
/// algorithm knows).
fn state_of(p: &SyncFloodMin) -> (u8, u64) {
    (p.seen().0, p.rounds_left())
}

fn b_sim(fig: &Fig1, b: Value, rounds: u64) -> Sim<SyncFloodMin> {
    SimBuilder::new(fig.network_b().clone(), move |_| {
        SyncFloodMin::new(b, rounds)
    })
    .scheduler(SynchronousScheduler::new(1))
    .message_id_budget(0) // anonymity, mechanically enforced
    .stop_when_all_decided(false)
    .build()
}

fn snapshot(sim: &Sim<SyncFloodMin>, inputs: &[Value]) -> ConsensusCheck {
    let report = RunReport {
        outcome: RunOutcome::MaxTime,
        end_time: sim.now(),
        decisions: sim.decisions().to_vec(),
        metrics: sim.metrics().clone(),
    };
    check_consensus(inputs, &report, &[])
}

/// Runs the full demonstration for a requested diameter (even, `>= 8`)
/// and size floor `n`.
pub fn run_anonymity_demo(diameter: usize, n: usize) -> AnonymityOutcome {
    let fig = Fig1::for_diameter_and_size(diameter, n);
    let n_prime = fig.n_prime();
    let g = fig.gadget_size();
    let rounds = diameter as u64; // enough for correctness at diameter D

    // --- Lemma 3.5: discover t by running the B executions out.
    let mut t = 0;
    for b in 0..2u64 {
        let mut sim = b_sim(&fig, b, rounds);
        let report = sim.run();
        assert!(report.all_decided(), "alpha_B^{b} must terminate");
        t = t.max(report.max_decision_time().expect("decisions exist").ticks());
    }

    // --- Fresh executions, advanced in lockstep for the comparison.
    let mut b_sims: Vec<Sim<SyncFloodMin>> =
        (0..2).map(|b| b_sim(&fig, b as Value, rounds)).collect();

    let q = fig.q_slot();
    let all_slots: Vec<Slot> = fig.network_a().slots().collect();
    let cut = DirectedCut::new([q], all_slots, Time(t + 1));
    let a_inputs: Vec<Value> = (0..n_prime)
        .map(|i| {
            if i < g {
                0 // gadget 0
            } else if i < 2 * g {
                1 // gadget 1
            } else {
                (i % 2) as Value // q and C: arbitrary
            }
        })
        .collect();
    let iv = a_inputs.clone();
    let mut a_sim = SimBuilder::new(fig.network_a().clone(), |s| {
        SyncFloodMin::new(iv[s.index()], rounds)
    })
    .scheduler(EdgeDelayScheduler::new(
        SynchronousScheduler::new(1),
        vec![cut],
    ))
    .message_id_budget(0)
    .stop_when_all_decided(false)
    .build();

    // --- Lemma 3.6: compare states step by step through step t.
    let mut states_compared = 0;
    let mut indistinguishable = true;
    for step in 0..=t {
        a_sim.run_until(Time(step));
        for sim_b in b_sims.iter_mut() {
            sim_b.run_until(Time(step));
        }
        for (b, sim_b) in b_sims.iter().enumerate() {
            for u in 0..g {
                let a_slot = Slot(b * g + u);
                let a_state = state_of(a_sim.process(a_slot));
                for &copy in &fig.s_u(GadgetVertex(u)) {
                    states_compared += 1;
                    if a_state != state_of(sim_b.process(copy)) {
                        indistinguishable = false;
                    }
                }
            }
        }
    }

    // Verdicts for the B executions at step t (all decided by then).
    let alpha_b = [
        snapshot(&b_sims[0], &vec![0; n_prime]),
        snapshot(&b_sims[1], &vec![1; n_prime]),
    ];

    // Let alpha_A run past the release of q's messages.
    a_sim.run_until(Time(t + 4 * diameter as u64));
    let alpha_a = snapshot(&a_sim, &a_inputs);

    AnonymityOutcome {
        n_prime,
        diameter,
        t,
        states_compared,
        indistinguishable,
        alpha_a,
        alpha_b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_3_3_demonstration_holds() {
        let out = run_anonymity_demo(8, 20);
        // Claim 3.4 numbers.
        assert_eq!(out.diameter, 8);
        assert!(out.n_prime >= 20);
        // Lemma 3.5: the B executions decide their uniform input by t.
        for (b, check) in out.alpha_b.iter().enumerate() {
            assert!(check.ok(), "alpha_B^{b}: {:?}", check.violation);
            assert_eq!(check.decided, Some(b as Value));
        }
        assert_eq!(out.t, 8, "SyncFloodMin decides at round D");
        // Lemma 3.6: states matched at every step.
        assert!(out.states_compared > 0);
        assert!(out.indistinguishable, "S_u copies diverged");
        // The punchline: agreement fails in Network A.
        assert!(!out.alpha_a.agreement, "expected the violation");
        assert!(out.alpha_a.termination);
    }

    #[test]
    fn violation_persists_at_larger_diameters() {
        let out = run_anonymity_demo(10, 36);
        assert!(out.indistinguishable);
        assert!(!out.alpha_a.agreement);
    }
}
