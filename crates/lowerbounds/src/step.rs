//! The valid-step machine of Section 3.1.
//!
//! The FLP generalization defines a *step* of node `u` as either (a)
//! some node `v != u` receiving `u`'s current message, or (b) `u`
//! receiving the ack for its current message. A step is **valid** when
//! deliveries happen in a fixed node order (the smallest non-crashed
//! node that has not yet received the message goes next) and acks only
//! fire once every non-crashed neighbor has received the message.
//! Restricting to valid steps picks out one well-behaved scheduler per
//! choice sequence, which is all the proof needs — and it makes the
//! schedule space small enough to explore exhaustively.
//!
//! [`StepMachine`] executes any [`Process`] over a single-hop network
//! under exactly these semantics, one step at a time, with optional
//! crash steps (a crashed node takes no further steps and its in-flight
//! message is never delivered further — the mid-broadcast partial
//! delivery the model allows).

use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

use amacl_model::ids::NodeId;
use amacl_model::prelude::*;
use amacl_model::proc::NodeCell;

/// One step of the valid-step semantics.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Step {
    /// Deliver node `u`'s current message to the smallest non-crashed
    /// node that has not yet received it (a type-(a) step of `u`).
    Deliver(usize),
    /// Acknowledge node `u`'s current message (a type-(b) step of `u`,
    /// valid only once all non-crashed peers have received it).
    Ack(usize),
    /// Crash node `u` (the adversary's move; consumes one unit of the
    /// crash budget).
    Crash(usize),
}

/// A single-hop valid-step executor.
///
/// `P` must be `Clone` (the explorer forks states) and `Debug` (global
/// states are fingerprinted via their debug representation, which is
/// deterministic for the `BTree`-based algorithm states used here).
pub struct StepMachine<P: Process + Clone + std::fmt::Debug> {
    procs: Vec<P>,
    cells: Vec<NodeCell<P::Msg>>,
    ids: Vec<NodeId>,
    outstanding: Vec<Option<P::Msg>>,
    delivered: Vec<BTreeSet<usize>>,
    crashed: Vec<bool>,
    steps_taken: u64,
}

impl<P> Clone for StepMachine<P>
where
    P: Process + Clone + std::fmt::Debug,
    P::Msg: Clone,
{
    fn clone(&self) -> Self {
        // NodeCell is not Clone (it owns an RNG); rebuild cells with
        // deterministic seeds and copy the observable state. Only
        // deterministic algorithms are explored, so the RNG state is
        // irrelevant.
        let mut cells: Vec<NodeCell<P::Msg>> = (0..self.procs.len())
            .map(|i| NodeCell::new(i as u64))
            .collect();
        for (i, cell) in cells.iter_mut().enumerate() {
            cell.decision = self.cells[i].decision;
            cell.ts_seq = self.cells[i].ts_seq;
            cell.busy_discards = self.cells[i].busy_discards;
        }
        Self {
            procs: self.procs.clone(),
            cells,
            ids: self.ids.clone(),
            outstanding: self.outstanding.clone(),
            delivered: self.delivered.clone(),
            crashed: self.crashed.clone(),
            steps_taken: self.steps_taken,
        }
    }
}

impl<P> StepMachine<P>
where
    P: Process + Clone + std::fmt::Debug,
    P::Msg: Clone + std::fmt::Debug,
{
    /// Builds a machine over a clique of `procs.len()` nodes (ids equal
    /// to indices) and runs every `on_start`, collecting initial
    /// broadcasts.
    pub fn new(mut procs: Vec<P>) -> Self {
        let n = procs.len();
        assert!(n >= 2, "step semantics need at least two nodes");
        let ids: Vec<NodeId> = (0..n).map(|i| NodeId(i as u64)).collect();
        let mut cells: Vec<NodeCell<P::Msg>> = (0..n).map(|i| NodeCell::new(i as u64)).collect();
        let mut outstanding: Vec<Option<P::Msg>> = vec![None; n];
        for i in 0..n {
            let mut ctx = cells[i].ctx(ids[i], Time::ZERO, false);
            procs[i].on_start(&mut ctx);
            outstanding[i] = cells[i].outbox.take();
        }
        Self {
            procs,
            cells,
            ids,
            outstanding,
            delivered: vec![BTreeSet::new(); n],
            crashed: vec![false; n],
            steps_taken: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// `true` if the machine has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// The process at `slot`, for state inspection.
    pub fn process(&self, slot: usize) -> &P {
        &self.procs[slot]
    }

    /// Whether `slot` has crashed.
    pub fn is_crashed(&self, slot: usize) -> bool {
        self.crashed[slot]
    }

    /// Decisions so far.
    pub fn decisions(&self) -> Vec<Option<Value>> {
        self.cells
            .iter()
            .map(|c| c.decision.map(|d| d.value))
            .collect()
    }

    /// Distinct decided values.
    pub fn decided_values(&self) -> BTreeSet<Value> {
        self.cells
            .iter()
            .filter_map(|c| c.decision.map(|d| d.value))
            .collect()
    }

    /// `true` when every non-crashed node has decided.
    pub fn all_alive_decided(&self) -> bool {
        (0..self.len()).all(|i| self.crashed[i] || self.cells[i].decision.is_some())
    }

    /// Steps taken so far (the machine's logical clock).
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// The pending recipient for `u`'s current message: the smallest
    /// non-crashed other node that has not yet received it.
    fn next_recipient(&self, u: usize) -> Option<usize> {
        self.outstanding[u].as_ref()?;
        (0..self.len()).find(|&v| v != u && !self.crashed[v] && !self.delivered[u].contains(&v))
    }

    /// The valid non-crash steps available now: for each non-crashed
    /// node with a current message, either its next delivery or (once
    /// fully delivered) its ack.
    pub fn valid_steps(&self) -> Vec<Step> {
        let mut steps = Vec::new();
        for u in 0..self.len() {
            if self.crashed[u] || self.outstanding[u].is_none() {
                continue;
            }
            match self.next_recipient(u) {
                Some(_) => steps.push(Step::Deliver(u)),
                None => steps.push(Step::Ack(u)),
            }
        }
        steps
    }

    /// The next valid non-crash step *of node `u`*, if it has one.
    pub fn next_step_of(&self, u: usize) -> Option<Step> {
        if self.crashed[u] || self.outstanding[u].is_none() {
            return None;
        }
        Some(match self.next_recipient(u) {
            Some(_) => Step::Deliver(u),
            None => Step::Ack(u),
        })
    }

    /// Applies a step.
    ///
    /// # Panics
    ///
    /// Panics if the step is not currently valid.
    pub fn apply(&mut self, step: Step) {
        self.steps_taken += 1;
        let now = Time(self.steps_taken);
        match step {
            Step::Deliver(u) => {
                let v = self
                    .next_recipient(u)
                    .expect("Deliver step requires a pending recipient");
                let msg = self.outstanding[u].clone().expect("current message");
                self.delivered[u].insert(v);
                let busy = self.outstanding[v].is_some();
                let mut ctx = self.cells[v].ctx(self.ids[v], now, busy);
                self.procs[v].on_receive(msg, &mut ctx);
                if let Some(m) = self.cells[v].outbox.take() {
                    debug_assert!(self.outstanding[v].is_none());
                    self.outstanding[v] = Some(m);
                    self.delivered[v].clear();
                }
            }
            Step::Ack(u) => {
                assert!(
                    self.next_recipient(u).is_none() && self.outstanding[u].is_some(),
                    "Ack step requires full delivery"
                );
                self.outstanding[u] = None;
                self.delivered[u].clear();
                let mut ctx = self.cells[u].ctx(self.ids[u], now, false);
                self.procs[u].on_ack(&mut ctx);
                if let Some(m) = self.cells[u].outbox.take() {
                    self.outstanding[u] = Some(m);
                }
            }
            Step::Crash(u) => {
                assert!(!self.crashed[u], "node already crashed");
                self.crashed[u] = true;
                // The in-flight message (if any) is frozen: remaining
                // nodes never receive it — mid-broadcast partial
                // delivery.
            }
        }
    }

    /// A deterministic fingerprint of the full global state, for
    /// memoized exploration.
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for i in 0..self.len() {
            format!("{:?}", self.procs[i]).hash(&mut h);
            format!("{:?}", self.outstanding[i]).hash(&mut h);
            self.delivered[i].iter().for_each(|v| v.hash(&mut h));
            0xFFu8.hash(&mut h);
            self.crashed[i].hash(&mut h);
            self.cells[i].decision.map(|d| d.value).hash(&mut h);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amacl_core::two_phase::{TpStage, TwoPhase};

    fn machine(inputs: &[Value]) -> StepMachine<TwoPhase> {
        StepMachine::new(inputs.iter().map(|&v| TwoPhase::new(v)).collect())
    }

    #[test]
    fn initial_steps_are_deliveries() {
        let m = machine(&[0, 1]);
        assert_eq!(m.valid_steps(), vec![Step::Deliver(0), Step::Deliver(1)]);
        assert_eq!(m.next_step_of(0), Some(Step::Deliver(0)));
    }

    #[test]
    fn delivery_then_ack_ordering() {
        let mut m = machine(&[0, 1]);
        // Deliver node 0's phase-1 message to node 1.
        m.apply(Step::Deliver(0));
        // Now node 0's message is fully delivered: its next step is the ack.
        assert_eq!(m.next_step_of(0), Some(Step::Ack(0)));
        m.apply(Step::Ack(0));
        // Node 0 moved to phase 2 and has a new message outstanding.
        assert_eq!(m.process(0).stage(), TpStage::Phase2);
        assert_eq!(m.next_step_of(0), Some(Step::Deliver(0)));
    }

    #[test]
    fn round_robin_valid_steps_reach_decision() {
        let mut m = machine(&[0, 1, 1]);
        let mut guard = 0;
        while !m.all_alive_decided() {
            let steps = m.valid_steps();
            assert!(!steps.is_empty(), "live nodes must have steps");
            for s in steps {
                m.apply(s);
            }
            guard += 1;
            assert!(guard < 1000, "execution should terminate");
        }
        assert_eq!(m.decided_values().len(), 1, "agreement under valid steps");
    }

    #[test]
    fn smallest_node_receives_first() {
        let mut m = machine(&[1, 0, 0]);
        // Node 2's message goes to node 0 before node 1.
        m.apply(Step::Deliver(2));
        assert!(m.process(0).stage() == TpStage::Phase1);
        // Still one recipient pending (node 1), so no ack yet.
        assert_eq!(m.next_step_of(2), Some(Step::Deliver(2)));
        m.apply(Step::Deliver(2));
        assert_eq!(m.next_step_of(2), Some(Step::Ack(2)));
    }

    #[test]
    fn crash_freezes_in_flight_message() {
        let mut m = machine(&[0, 1, 1]);
        m.apply(Step::Deliver(0)); // node 1 got node 0's phase-1 msg
        m.apply(Step::Crash(0)); // node 0 dies mid-broadcast
        assert!(m.is_crashed(0));
        // Node 0 has no further steps; node 2 never receives its message.
        assert_eq!(m.next_step_of(0), None);
        assert!(!m.valid_steps().contains(&Step::Deliver(0)));
    }

    #[test]
    fn crashed_recipients_are_skipped() {
        let mut m = machine(&[0, 1, 1]);
        m.apply(Step::Crash(0));
        // Node 1's message now only needs node 2 (node 0 is crashed).
        m.apply(Step::Deliver(1));
        assert_eq!(m.next_step_of(1), Some(Step::Ack(1)));
    }

    #[test]
    fn fingerprints_distinguish_states() {
        let m1 = machine(&[0, 1]);
        let m2 = machine(&[1, 1]);
        assert_ne!(m1.fingerprint(), m2.fingerprint());
        let mut m3 = machine(&[0, 1]);
        assert_eq!(m1.fingerprint(), m3.fingerprint());
        m3.apply(Step::Deliver(0));
        assert_ne!(m1.fingerprint(), m3.fingerprint());
    }

    #[test]
    fn clone_preserves_state() {
        let mut m = machine(&[0, 1]);
        m.apply(Step::Deliver(0));
        let c = m.clone();
        assert_eq!(m.fingerprint(), c.fingerprint());
    }
}
