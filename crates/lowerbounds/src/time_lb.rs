//! Theorem 3.10, executably: consensus takes `Ω(D * F_ack)` time.
//!
//! Under the max-delay adversary (every broadcast takes the full
//! `F_ack`), information travels one hop per `F_ack` ticks. On a line
//! of diameter `D`, an endpoint that decides before
//! `floor(D/2) * F_ack` has decided without any influence from the far
//! half — so splitting the inputs 0/1 across the halves forces a
//! disagreement (the partition argument).
//!
//! Two demonstrations:
//!
//! * [`earliest_decision`] — runs *correct* algorithms (wPAXOS, flood
//!   gather) on the line under the adversary and confirms nobody ever
//!   decides before the bound.
//! * [`partition_violation`] — runs an algorithm that *does* decide
//!   early (anonymous flooding with too few rounds) and exhibits the
//!   agreement violation the bound predicts.

use amacl_core::baselines::anonymous_flood::SyncFloodMin;
use amacl_core::harness::{run_flood_gather, run_wpaxos};
use amacl_core::verify::{check_consensus, ConsensusCheck};
use amacl_model::prelude::*;

/// Which correct algorithm to measure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Algorithm {
    /// wPAXOS with the paper's default configuration.
    Wpaxos,
    /// The flood-and-gather baseline.
    FloodGather,
}

/// Measurement of one run against the bound.
#[derive(Clone, Debug)]
pub struct TimeLbMeasurement {
    /// Line diameter `D` (the line has `D + 1` nodes).
    pub diameter: usize,
    /// The adversary's `F_ack`.
    pub f_ack: u64,
    /// The theorem's bound: `floor(D/2) * F_ack` ticks.
    pub bound: u64,
    /// Earliest decision across all nodes.
    pub earliest: u64,
    /// Latest decision (for the upper-bound side of the story).
    pub latest: u64,
    /// The run satisfied consensus.
    pub ok: bool,
}

impl TimeLbMeasurement {
    /// `true` when the earliest decision respects the lower bound.
    pub fn respects_bound(&self) -> bool {
        self.earliest >= self.bound
    }
}

/// Runs `algorithm` on a line of diameter `d` with split inputs under
/// the max-delay adversary and measures decision times against the
/// `floor(D/2) * F_ack` bound.
pub fn earliest_decision(algorithm: Algorithm, d: usize, f_ack: u64) -> TimeLbMeasurement {
    let n = d + 1;
    // Split inputs: the two halves start with different values, the
    // configuration the partition argument uses.
    let inputs: Vec<Value> = (0..n).map(|i| if i <= d / 2 { 0 } else { 1 }).collect();
    let topo = Topology::line(n);
    let sched = MaxDelayScheduler::new(f_ack);
    let run = match algorithm {
        Algorithm::Wpaxos => run_wpaxos(topo, &inputs, sched),
        Algorithm::FloodGather => run_flood_gather(topo, &inputs, sched),
    };
    TimeLbMeasurement {
        diameter: d,
        f_ack,
        bound: (d as u64 / 2) * f_ack,
        earliest: run
            .report
            .min_decision_time()
            .expect("somebody decided")
            .ticks(),
        latest: run.decision_ticks(),
        ok: run.check.ok(),
    }
}

/// Runs the "eager" algorithm — anonymous flooding configured to decide
/// after only `rounds < floor(D/2)` of its own broadcasts — under the
/// max-delay adversary with split inputs, and returns the (expected
/// violated) verdict together with the earliest decision time.
pub fn partition_violation(d: usize, f_ack: u64, rounds: u64) -> (ConsensusCheck, u64) {
    assert!(
        rounds < (d as u64) / 2,
        "the eager algorithm must decide before the bound"
    );
    let n = d + 1;
    let inputs: Vec<Value> = (0..n).map(|i| if i <= d / 2 { 0 } else { 1 }).collect();
    let iv = inputs.clone();
    let mut sim = SimBuilder::new(Topology::line(n), |s| {
        SyncFloodMin::new(iv[s.index()], rounds)
    })
    .scheduler(MaxDelayScheduler::new(f_ack))
    .build();
    let report = sim.run();
    let earliest = report.min_decision_time().expect("decided").ticks();
    (check_consensus(&inputs, &report, &[]), earliest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wpaxos_respects_the_bound() {
        for (d, f_ack) in [(4usize, 1u64), (6, 3), (10, 2), (16, 1)] {
            let m = earliest_decision(Algorithm::Wpaxos, d, f_ack);
            assert!(m.ok, "D={d} F_ack={f_ack} consensus failed");
            assert!(
                m.respects_bound(),
                "D={d} F_ack={f_ack}: earliest {} < bound {}",
                m.earliest,
                m.bound
            );
        }
    }

    #[test]
    fn flood_gather_respects_the_bound() {
        for (d, f_ack) in [(4usize, 2u64), (8, 1), (12, 2)] {
            let m = earliest_decision(Algorithm::FloodGather, d, f_ack);
            assert!(m.ok, "D={d}");
            assert!(
                m.respects_bound(),
                "earliest {} < bound {}",
                m.earliest,
                m.bound
            );
        }
    }

    #[test]
    fn eager_deciders_get_partitioned() {
        for (d, f_ack) in [(8usize, 2u64), (12, 1)] {
            let (check, earliest) = partition_violation(d, f_ack, 2);
            assert!(
                !check.agreement,
                "D={d}: deciding at {earliest} should violate agreement"
            );
            assert!(earliest < (d as u64 / 2) * f_ack);
        }
    }

    #[test]
    fn bound_tightens_with_f_ack() {
        let slow = earliest_decision(Algorithm::Wpaxos, 6, 8);
        let fast = earliest_decision(Algorithm::Wpaxos, 6, 1);
        assert!(slow.earliest > fast.earliest);
        assert!(slow.bound == 8 * fast.bound);
    }
}
