//! Exhaustive bivalence exploration: the computational content of
//! Theorem 3.2 and Lemma 3.1.
//!
//! The FLP generalization argues: (1) some initial configuration is
//! *bivalent* — both decision values are reachable by valid-step
//! schedules (with the adversary allowed one crash); (2) bivalence can
//! always be extended (Lemma 3.1), so a fair schedule exists on which
//! no node ever decides, contradicting termination.
//!
//! [`Explorer`] performs memoized exhaustive search over the valid-step
//! schedule space (plus up to `crash_budget` crash steps) of a
//! [`StepMachine`] and reports which decision values are reachable and
//! whether the adversary can strand the execution undecided. On the
//! paper's own Two-Phase Consensus it verifies, mechanically:
//!
//! * mixed-input initial configurations are bivalent with one crash
//!   allowed;
//! * without crashes every valid schedule terminates with agreement;
//! * with one crash there are *stuck* schedules — a live node waits
//!   forever (the termination loss that the impossibility predicts);
//! * Two-Phase Consensus has **critical configurations** — bivalent
//!   states where some node's next step forces univalence. Lemma 3.1
//!   proves a 1-crash-tolerant algorithm cannot have one, so their
//!   existence is a machine-checked certificate that Two-Phase (like
//!   every deterministic algorithm, by Theorem 3.2) fails under a
//!   single crash.

use std::collections::HashMap;

use amacl_model::prelude::*;

use crate::step::{Step, StepMachine};

/// What the schedule space reachable from a state contains.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ExploreResult {
    /// Some schedule decides 0.
    pub zero: bool,
    /// Some schedule decides 1.
    pub one: bool,
    /// Some schedule reaches a dead end with a non-crashed node
    /// undecided (a termination violation).
    pub stuck_undecided: bool,
    /// The depth limit truncated the search (results are then lower
    /// bounds on reachability).
    pub truncated: bool,
}

impl ExploreResult {
    /// Both decision values reachable.
    pub fn bivalent(&self) -> bool {
        self.zero && self.one
    }

    fn merge(&mut self, other: ExploreResult) {
        self.zero |= other.zero;
        self.one |= other.one;
        self.stuck_undecided |= other.stuck_undecided;
        self.truncated |= other.truncated;
    }
}

/// Valency of a configuration (Section 3.1's definitions).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Valency {
    /// Every deciding schedule decides 0.
    ZeroValent,
    /// Every deciding schedule decides 1.
    OneValent,
    /// Schedules deciding 0 and schedules deciding 1 both exist.
    Bivalent,
    /// The search was truncated before finding any decision.
    Unknown,
}

/// Memoized exhaustive explorer over valid-step schedules.
pub struct Explorer {
    crash_budget: usize,
    max_depth: usize,
    memo: HashMap<(u64, usize), ExploreResult>,
    states_visited: u64,
}

impl Explorer {
    /// Creates an explorer allowing up to `crash_budget` crashes and
    /// searching schedules up to `max_depth` steps long.
    pub fn new(crash_budget: usize, max_depth: usize) -> Self {
        Self {
            crash_budget,
            max_depth,
            memo: HashMap::new(),
            states_visited: 0,
        }
    }

    /// States examined so far (diagnostics).
    pub fn states_visited(&self) -> u64 {
        self.states_visited
    }

    /// Explores every schedule from `machine`'s current state.
    pub fn explore<P>(&mut self, machine: &StepMachine<P>) -> ExploreResult
    where
        P: Process + Clone + std::fmt::Debug,
        P::Msg: Clone + std::fmt::Debug,
    {
        self.explore_inner(machine, self.crash_budget, 0)
    }

    fn explore_inner<P>(
        &mut self,
        machine: &StepMachine<P>,
        crashes_left: usize,
        depth: usize,
    ) -> ExploreResult
    where
        P: Process + Clone + std::fmt::Debug,
        P::Msg: Clone + std::fmt::Debug,
    {
        self.states_visited += 1;
        // A decision fixes the branch outcome: for the algorithms under
        // study agreement holds among deciders, so the first decision
        // determines the value (the explorer still records multiple
        // values if an unsafe algorithm produces them).
        let decided = machine.decided_values();
        if !decided.is_empty() {
            return ExploreResult {
                zero: decided.contains(&0),
                one: decided.contains(&1),
                stuck_undecided: false,
                truncated: false,
            };
        }
        if depth >= self.max_depth {
            return ExploreResult {
                truncated: true,
                ..ExploreResult::default()
            };
        }
        let key = (machine.fingerprint(), crashes_left);
        if let Some(&cached) = self.memo.get(&key) {
            return cached;
        }

        let mut steps = machine.valid_steps();
        if crashes_left > 0 {
            for u in 0..machine.len() {
                if !machine.is_crashed(u) {
                    steps.push(Step::Crash(u));
                }
            }
        }

        let mut result = ExploreResult::default();
        if steps.iter().all(|s| matches!(s, Step::Crash(_))) {
            // No valid non-crash steps: a dead end. Undecided live
            // nodes mean the adversary won (termination violated).
            result.stuck_undecided = !machine.all_alive_decided();
        }
        for step in steps {
            let mut next = machine.clone();
            let left = match step {
                Step::Crash(_) => crashes_left - 1,
                _ => crashes_left,
            };
            next.apply(step);
            result.merge(self.explore_inner(&next, left, depth + 1));
            if result.bivalent() && result.stuck_undecided {
                break; // nothing more to learn on this branch
            }
        }
        self.memo.insert(key, result);
        result
    }

    /// Classifies a configuration's valency.
    pub fn classify<P>(&mut self, machine: &StepMachine<P>) -> Valency
    where
        P: Process + Clone + std::fmt::Debug,
        P::Msg: Clone + std::fmt::Debug,
    {
        let r = self.explore(machine);
        match (r.zero, r.one) {
            (true, true) => Valency::Bivalent,
            (true, false) => Valency::ZeroValent,
            (false, true) => Valency::OneValent,
            (false, false) => Valency::Unknown,
        }
    }
}

/// Searches (breadth-first, over crash-free valid-step extensions up to
/// `max_len`) for an extension `alpha'` of the machine's current state
/// such that `alpha' . s_u` is still bivalent — the object Lemma 3.1
/// proves must exist *for any algorithm that solves consensus under one
/// crash*. Returns the extension's steps, or `None` when no such
/// extension exists within the horizon: a `None` at a bivalent state is
/// a *critical configuration*, certifying (by the lemma's
/// contrapositive) that the algorithm is not 1-crash-tolerant.
pub fn lemma_3_1_extension<P>(
    machine: &StepMachine<P>,
    u: usize,
    crash_budget: usize,
    max_len: usize,
    classify_depth: usize,
) -> Option<Vec<Step>>
where
    P: Process + Clone + std::fmt::Debug,
    P::Msg: Clone + std::fmt::Debug,
{
    let mut frontier: Vec<(StepMachine<P>, Vec<Step>)> = vec![(machine.clone(), Vec::new())];
    for _ in 0..=max_len {
        let mut next_frontier = Vec::new();
        for (state, path) in frontier {
            // Does appending u's next valid step keep bivalence?
            if let Some(su) = state.next_step_of(u) {
                let mut probe = state.clone();
                probe.apply(su);
                let mut explorer = Explorer::new(crash_budget, classify_depth);
                if explorer.classify(&probe) == Valency::Bivalent {
                    return Some(path);
                }
            }
            for step in state.valid_steps() {
                let mut next = state.clone();
                next.apply(step);
                let mut p = path.clone();
                p.push(step);
                next_frontier.push((next, p));
            }
        }
        frontier = next_frontier;
        if frontier.is_empty() {
            break;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use amacl_core::two_phase::TwoPhase;

    fn machine(inputs: &[Value]) -> StepMachine<TwoPhase> {
        StepMachine::new(inputs.iter().map(|&v| TwoPhase::new(v)).collect())
    }

    #[test]
    fn uniform_configs_are_univalent() {
        let mut ex = Explorer::new(1, 60);
        assert_eq!(ex.classify(&machine(&[0, 0])), Valency::ZeroValent);
        let mut ex = Explorer::new(1, 60);
        assert_eq!(ex.classify(&machine(&[1, 1])), Valency::OneValent);
    }

    #[test]
    fn mixed_config_is_bivalent_with_one_crash() {
        // The FLP-style starting point: with a single crash allowed,
        // the (0, 1) configuration can go either way.
        let mut ex = Explorer::new(1, 80);
        assert_eq!(ex.classify(&machine(&[0, 1])), Valency::Bivalent);
    }

    #[test]
    fn crash_free_schedules_always_terminate_with_agreement() {
        // Budget 0: two-phase is correct, so no schedule gets stuck and
        // values never conflict per-branch.
        let mut ex = Explorer::new(0, 120);
        let r = ex.explore(&machine(&[0, 1]));
        assert!(!r.stuck_undecided, "crash-free schedules all terminate");
        assert!(!r.truncated);
    }

    #[test]
    fn one_crash_can_strand_a_live_node() {
        // The termination loss Theorem 3.2 predicts: with one crash the
        // adversary can leave a non-crashed node undecided forever.
        let mut ex = Explorer::new(1, 120);
        let r = ex.explore(&machine(&[0, 1]));
        assert!(r.stuck_undecided, "a crash schedule strands a live node");
        assert!(r.bivalent());
    }

    #[test]
    fn three_node_mixed_config_is_bivalent() {
        let mut ex = Explorer::new(1, 200);
        let r = ex.explore(&machine(&[0, 1, 1]));
        assert!(r.bivalent(), "{r:?}");
    }

    #[test]
    fn two_phase_has_critical_configurations() {
        // Lemma 3.1 says: for an algorithm that SOLVES consensus under
        // one crash, bivalence can always be extended past any node's
        // next step. Its contrapositive is checkable: Two-Phase
        // Consensus has a *critical* configuration — a bivalent state
        // where some node's next step forces univalence along every
        // extension — therefore Two-Phase cannot be 1-crash-tolerant
        // (and indeed `one_crash_can_strand_a_live_node` shows the
        // termination loss directly).
        let m = machine(&[0, 1]);
        let mut ex = Explorer::new(1, 80);
        assert_eq!(ex.classify(&m), Valency::Bivalent);
        let critical_node = (0..2).find(|&u| lemma_3_1_extension(&m, u, 1, 8, 80).is_none());
        assert!(
            critical_node.is_some(),
            "every node had a Lemma 3.1 extension — two-phase would be 1-crash-tolerant"
        );
    }

    #[test]
    fn critical_step_forces_univalence() {
        // Pin down one critical configuration concretely: after node
        // 0's phase-1 message is delivered, the state is bivalent, but
        // node 1's next step (delivering phase1(1) to node 0) makes it
        // 1-valent, and node 0's next step (its phase-1 ack, fixing
        // status decided(0)) makes it 0-valent.
        let mut m = machine(&[0, 1]);
        m.apply(Step::Deliver(0));
        let mut ex = Explorer::new(1, 80);
        assert_eq!(ex.classify(&m), Valency::Bivalent);

        let mut after_s1 = m.clone();
        after_s1.apply(after_s1.next_step_of(1).unwrap());
        let mut ex = Explorer::new(1, 80);
        assert_eq!(ex.classify(&after_s1), Valency::OneValent);

        let mut after_s0 = m.clone();
        after_s0.apply(after_s0.next_step_of(0).unwrap());
        let mut ex = Explorer::new(1, 80);
        assert_eq!(ex.classify(&after_s0), Valency::ZeroValent);
    }

    #[test]
    fn explorer_memoization_is_effective() {
        let mut ex = Explorer::new(1, 80);
        ex.explore(&machine(&[0, 1]));
        let visited = ex.states_visited();
        assert!(visited > 0);
        // Exploring again reuses the memo (only the root is re-visited).
        ex.explore(&machine(&[0, 1]));
        assert!(ex.states_visited() < visited * 2 + 10);
    }
}
