//! Theorem 3.9, executably: without knowledge of `n`, consensus is
//! impossible in multihop networks — even with unique ids and knowledge
//! of `D`.
//!
//! The construction (Figure 2's `K_D`): two line copies `L_D` and a
//! tail `L_{D-1}` whose *hub* endpoint touches every copy node. The
//! semi-synchronous scheduler withholds everything the hub sends into
//! the copies for `t` steps. During that window a copy node's execution
//! is **identical** to the same algorithm running alone on a plain line
//! `L_D` with a uniform input (Lemma 3.8 supplies the `t` by which
//! those line executions terminate). So copy 1 decides 0, copy 2
//! decides 1, and agreement dies.
//!
//! The victim here is [`IdFloodQuiesce`] — a perfectly reasonable
//! `n`-free algorithm (unique ids, knows `D`, detects quiescence) that
//! is provably correct on every line under the synchronous scheduler.
//! Knowing `n` is exactly what would have saved it: each copy holds
//! only `D + 1` of the `3D + 2` ids.

use amacl_core::baselines::quiesce::IdFloodQuiesce;
use amacl_core::verify::{check_consensus, ConsensusCheck};
use amacl_model::ids::NodeId;
use amacl_model::prelude::*;
use amacl_model::sim::engine::{RunOutcome, RunReport};
use amacl_model::topo::kd::KdNetwork;

/// Result of the Theorem 3.9 demonstration.
#[derive(Clone, Debug)]
pub struct UnknownNOutcome {
    /// Diameter `D` of `K_D` (verified).
    pub diameter: usize,
    /// Network size `3D + 2` — which the algorithm never learns.
    pub n: usize,
    /// Termination step `t` of the line executions (Lemma 3.8).
    pub t: u64,
    /// Per-step state comparisons between the line runs and the `K_D`
    /// copies.
    pub states_compared: usize,
    /// Whether all comparisons matched (the indistinguishability).
    pub indistinguishable: bool,
    /// Verdict on the `K_D` execution `beta_D` — agreement is expected
    /// to be violated.
    pub beta_d: ConsensusCheck,
    /// The two decided values of the copies (expected `[0, 1]`).
    pub copy_decisions: [Option<Value>; 2],
}

/// Builds the line `L_D` simulation with the given uniform input and
/// explicit ids (so its states are comparable to a `K_D` copy that was
/// assigned the same ids).
fn line_sim(d: usize, b: Value, quiet: u64, ids: Vec<NodeId>) -> Sim<IdFloodQuiesce> {
    SimBuilder::new(Topology::line(d + 1), move |_| {
        IdFloodQuiesce::new(b, quiet)
    })
    .ids(ids)
    .scheduler(SynchronousScheduler::new(1))
    .message_id_budget(1)
    .stop_when_all_decided(false)
    .build()
}

/// State fingerprint of one `IdFloodQuiesce` node: its full debug
/// representation (all fields are ordered containers, so this is
/// deterministic).
fn state_of(p: &IdFloodQuiesce) -> String {
    format!("{p:?}")
}

/// Runs the full demonstration for diameter `D >= 2`.
pub fn run_unknown_n_demo(diameter: usize) -> UnknownNOutcome {
    let kd = KdNetwork::new(diameter);
    let n = kd.topology().len();
    let quiet = 2 * diameter as u64;

    // Ids for the two copies in K_D (defaults: slot index).
    let copy_ids: [Vec<NodeId>; 2] = [
        kd.copy1_slots()
            .iter()
            .map(|s| NodeId(s.index() as u64))
            .collect(),
        kd.copy2_slots()
            .iter()
            .map(|s| NodeId(s.index() as u64))
            .collect(),
    ];

    // --- Lemma 3.8: discover t from the two line executions (each
    // with the ids its K_D copy will have).
    let mut t = 0;
    for b in 0..2u64 {
        let mut sim = line_sim(diameter, b, quiet, copy_ids[b as usize].clone());
        let report = sim.run();
        assert!(report.all_decided(), "alpha^{b}_D must terminate");
        t = t.max(report.max_decision_time().expect("decided").ticks());
    }

    // --- beta_D: K_D with copy 1 all-0, copy 2 all-1, tail arbitrary,
    // and the semi-synchronous scheduler (hub -> copies cut until t+1).
    let copy1 = kd.copy1_slots();
    let copy2 = kd.copy2_slots();
    let inputs: Vec<Value> = (0..n)
        .map(|i| {
            if copy1.contains(&Slot(i)) {
                0
            } else if copy2.contains(&Slot(i)) {
                1
            } else {
                (i % 2) as Value
            }
        })
        .collect();
    let cut_targets: Vec<Slot> = copy1.iter().chain(copy2.iter()).copied().collect();
    let cut = DirectedCut::new([kd.hub()], cut_targets, Time(t + 1));
    let iv = inputs.clone();
    let mut beta = SimBuilder::new(kd.topology().clone(), |s| {
        IdFloodQuiesce::new(iv[s.index()], quiet)
    })
    .scheduler(EdgeDelayScheduler::new(
        SynchronousScheduler::new(1),
        vec![cut],
    ))
    .message_id_budget(1)
    .stop_when_all_decided(false)
    .build();

    // --- Fresh line executions advanced in lockstep with beta_D.
    let mut lines: Vec<Sim<IdFloodQuiesce>> = (0..2u64)
        .map(|b| line_sim(diameter, b, quiet, copy_ids[b as usize].clone()))
        .collect();

    let mut states_compared = 0;
    let mut indistinguishable = true;
    for step in 0..=t {
        beta.run_until(Time(step));
        for line in lines.iter_mut() {
            line.run_until(Time(step));
        }
        for (c, copies) in [(0usize, &copy1), (1usize, &copy2)] {
            for (pos, &slot) in copies.iter().enumerate() {
                states_compared += 1;
                if state_of(beta.process(slot)) != state_of(lines[c].process(Slot(pos))) {
                    indistinguishable = false;
                }
            }
        }
    }

    let copy_decisions = [
        beta.decisions()[copy1[0].index()].map(|d| d.value),
        beta.decisions()[copy2[0].index()].map(|d| d.value),
    ];

    // Run beta_D past the release so the tail settles too.
    beta.run_until(Time(t + 6 * diameter as u64 + 10));
    let report = RunReport {
        outcome: RunOutcome::MaxTime,
        end_time: beta.now(),
        decisions: beta.decisions().to_vec(),
        metrics: beta.metrics().clone(),
    };
    let beta_d = check_consensus(&inputs, &report, &[]);

    UnknownNOutcome {
        diameter,
        n,
        t,
        states_compared,
        indistinguishable,
        beta_d,
        copy_decisions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_3_9_demonstration_holds() {
        let out = run_unknown_n_demo(4);
        assert_eq!(out.n, 14);
        assert!(out.states_compared > 0);
        assert!(out.indistinguishable, "copy states diverged from lines");
        // Copy 1 decided 0, copy 2 decided 1 — inside one network.
        assert_eq!(out.copy_decisions, [Some(0), Some(1)]);
        assert!(!out.beta_d.agreement, "expected the violation");
    }

    #[test]
    fn violation_persists_across_diameters() {
        for d in [2usize, 3, 6] {
            let out = run_unknown_n_demo(d);
            assert!(out.indistinguishable, "D={d}");
            assert!(!out.beta_d.agreement, "D={d}");
        }
    }
}
