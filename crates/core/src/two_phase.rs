//! Two-Phase Consensus (Algorithm 1): optimal single-hop consensus.
//!
//! Solves binary consensus in single-hop (clique) topologies in
//! `O(F_ack)` time, assuming unique ids but **no knowledge of `n` or of
//! the participants** (Theorem 4.1). This opens a gap with the
//! asynchronous broadcast model of Abboud et al., where consensus is
//! impossible under those assumptions — the ack is what closes the gap.
//!
//! ## How it works
//!
//! Each node `u` runs two broadcast phases:
//!
//! 1. Broadcast `(phase1, id_u, v_u)`. When the ack arrives, choose a
//!    *status*: if any evidence of a different initial value was seen
//!    (a phase-1 message with `1 - v_u`, or a *bivalent* phase-2
//!    message), the status is `bivalent`; otherwise it is
//!    `decided(v_u)`.
//! 2. Broadcast `(phase2, id_u, status)`. On the ack: a `decided`
//!    node decides its value and terminates. A `bivalent` node builds a
//!    *witness list* `W` of every id heard so far, waits until it holds
//!    a phase-2 message from every witness, then decides 0 if any
//!    witness reported `decided(0)`, else the default 1.
//!
//! The witness wait is the crux of the agreement proof: if some node
//! `u` chose `decided(0)`, every bivalent node either heard from `u`
//! before finishing phase 2 (and thus waits for, and sees, `u`'s
//! status) or — by the ack ordering — `u` must have seen its bivalent
//! phase-2 message during phase 1, contradicting `u`'s decided status.
//!
//! ## A pseudocode discrepancy in the paper (reproduced here)
//!
//! Line 23 of the paper's Algorithm 1 checks for `decided(0)` in `R_2`
//! only, but a witness's phase-2 message can legitimately arrive while
//! the checker is still in phase 1 — landing in `R_1`. The proof of
//! Theorem 4.1 says the waiting node "will therefore see that `u` has a
//! status of decided(0)", which requires scanning `R_1 ∪ R_2`. With the
//! literal `R_2`-only check there is a schedule (see the
//! `literal_r2_check_violates_agreement` test) where agreement fails.
//! This implementation scans `R_1 ∪ R_2`;
//! [`TwoPhase::with_literal_r2_check`] reproduces the paper's literal
//! pseudocode for the regression demonstration.

use std::collections::BTreeSet;

use amacl_model::prelude::*;

/// Status chosen after the phase-1 ack.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum TpStatus {
    /// The node saw only its own initial value: it will decide it.
    Decided(Value),
    /// The node saw evidence of both values.
    Bivalent,
}

/// Messages of Algorithm 1. Each carries exactly one id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum TpMsg {
    /// First-phase announcement of the sender's initial value.
    Phase1 {
        /// Sender id.
        id: NodeId,
        /// Sender's initial value.
        value: Value,
    },
    /// Second-phase announcement of the sender's status.
    Phase2 {
        /// Sender id.
        id: NodeId,
        /// Sender's status.
        status: TpStatus,
    },
}

impl TpMsg {
    /// The sender id embedded in the message.
    pub fn sender(&self) -> NodeId {
        match *self {
            TpMsg::Phase1 { id, .. } | TpMsg::Phase2 { id, .. } => id,
        }
    }
}

impl Payload for TpMsg {
    fn id_count(&self) -> usize {
        1
    }
}

/// Where the algorithm currently is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TpStage {
    /// Waiting for the phase-1 ack.
    Phase1,
    /// Waiting for the phase-2 ack.
    Phase2,
    /// Status was bivalent; waiting for phase-2 messages from all
    /// witnesses.
    AwaitWitnesses,
    /// Decided.
    Done,
}

/// One node running Two-Phase Consensus.
#[derive(Clone, Debug)]
pub struct TwoPhase {
    input: Value,
    literal_r2: bool,
    stage: TpStage,
    r1: BTreeSet<TpMsg>,
    r2: BTreeSet<TpMsg>,
    status: Option<TpStatus>,
    witnesses: BTreeSet<NodeId>,
}

impl TwoPhase {
    /// Creates a node with the given binary input.
    ///
    /// # Panics
    ///
    /// Panics unless `input` is 0 or 1 (the paper studies binary
    /// consensus; the default-1 decision rule is binary-specific).
    pub fn new(input: Value) -> Self {
        assert!(input <= 1, "two-phase consensus is binary");
        Self {
            input,
            literal_r2: false,
            stage: TpStage::Phase1,
            r1: BTreeSet::new(),
            r2: BTreeSet::new(),
            status: None,
            witnesses: BTreeSet::new(),
        }
    }

    /// As [`TwoPhase::new`], but reproducing the paper's literal line
    /// 23 (scan `R_2` only for `decided(0)`). **Unsafe** — exists to
    /// demonstrate the pseudocode discrepancy; see the module docs.
    pub fn with_literal_r2_check(input: Value) -> Self {
        Self {
            literal_r2: true,
            ..Self::new(input)
        }
    }

    /// The node's input value.
    pub fn input(&self) -> Value {
        self.input
    }

    /// Current stage, for inspection in tests.
    pub fn stage(&self) -> TpStage {
        self.stage
    }

    /// The status chosen at the phase-1 ack, once chosen.
    pub fn status(&self) -> Option<TpStatus> {
        self.status
    }

    /// The witness list `W` (empty until built at the phase-2 ack).
    pub fn witnesses(&self) -> &BTreeSet<NodeId> {
        &self.witnesses
    }

    fn saw_conflicting_evidence(&self) -> bool {
        self.r1.iter().any(|m| match *m {
            TpMsg::Phase1 { value, .. } => value != self.input,
            TpMsg::Phase2 { status, .. } => status == TpStatus::Bivalent,
        })
    }

    fn have_phase2_from(&self, id: NodeId) -> bool {
        let check = |m: &TpMsg| matches!(*m, TpMsg::Phase2 { id: i, .. } if i == id);
        self.r1.iter().any(check) || self.r2.iter().any(check)
    }

    fn decided_zero_visible(&self) -> bool {
        let check = |m: &TpMsg| {
            matches!(
                *m,
                TpMsg::Phase2 {
                    status: TpStatus::Decided(0),
                    ..
                }
            )
        };
        if self.literal_r2 {
            self.r2.iter().any(check)
        } else {
            self.r1.iter().any(check) || self.r2.iter().any(check)
        }
    }

    fn try_finish(&mut self, ctx: &mut Context<'_, TpMsg>) {
        debug_assert_eq!(self.stage, TpStage::AwaitWitnesses);
        if self.witnesses.iter().all(|&w| self.have_phase2_from(w)) {
            let value = if self.decided_zero_visible() { 0 } else { 1 };
            ctx.decide(value);
            self.stage = TpStage::Done;
        }
    }
}

impl Process for TwoPhase {
    type Msg = TpMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, TpMsg>) {
        let own = TpMsg::Phase1 {
            id: ctx.id(),
            value: self.input,
        };
        self.r1.insert(own);
        ctx.broadcast(own);
    }

    fn on_receive(&mut self, msg: TpMsg, ctx: &mut Context<'_, TpMsg>) {
        match self.stage {
            TpStage::Phase1 => {
                self.r1.insert(msg);
            }
            TpStage::Phase2 | TpStage::AwaitWitnesses => {
                self.r2.insert(msg);
            }
            TpStage::Done => return,
        }
        if self.stage == TpStage::AwaitWitnesses {
            self.try_finish(ctx);
        }
    }

    fn on_ack(&mut self, ctx: &mut Context<'_, TpMsg>) {
        match self.stage {
            TpStage::Phase1 => {
                let status = if self.saw_conflicting_evidence() {
                    TpStatus::Bivalent
                } else {
                    TpStatus::Decided(self.input)
                };
                self.status = Some(status);
                self.stage = TpStage::Phase2;
                let own = TpMsg::Phase2 {
                    id: ctx.id(),
                    status,
                };
                self.r2.insert(own);
                ctx.broadcast(own);
            }
            TpStage::Phase2 => match self.status.expect("status set at phase-1 ack") {
                TpStatus::Decided(v) => {
                    ctx.decide(v);
                    self.stage = TpStage::Done;
                }
                TpStatus::Bivalent => {
                    self.witnesses = self
                        .r1
                        .iter()
                        .chain(self.r2.iter())
                        .map(TpMsg::sender)
                        .collect();
                    self.stage = TpStage::AwaitWitnesses;
                    self.try_finish(ctx);
                }
            },
            // No broadcasts are outstanding after phase 2 completes.
            TpStage::AwaitWitnesses | TpStage::Done => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_consensus;

    fn run(
        inputs: &[Value],
        scheduler: impl Scheduler + 'static,
        literal: bool,
    ) -> (RunReport, Vec<Value>) {
        let topo = Topology::clique(inputs.len());
        let inputs_vec = inputs.to_vec();
        let mut sim = SimBuilder::new(topo, |s| {
            if literal {
                TwoPhase::with_literal_r2_check(inputs_vec[s.index()])
            } else {
                TwoPhase::new(inputs_vec[s.index()])
            }
        })
        .scheduler(scheduler)
        .message_id_budget(1)
        .build();
        (sim.run(), inputs.to_vec())
    }

    #[test]
    fn uniform_inputs_decide_that_value_synchronously() {
        for v in [0u64, 1] {
            let inputs = vec![v; 5];
            let (report, _) = run(&inputs, SynchronousScheduler::new(1), false);
            let check = check_consensus(&inputs, &report, &[]);
            check.assert_ok();
            assert_eq!(check.decided, Some(v));
        }
    }

    #[test]
    fn mixed_inputs_agree_synchronously() {
        let inputs = vec![0, 1, 0, 1, 1, 0];
        let (report, _) = run(&inputs, SynchronousScheduler::new(1), false);
        check_consensus(&inputs, &report, &[]).assert_ok();
    }

    #[test]
    fn decision_time_is_two_rounds_synchronously() {
        // Under the synchronous scheduler everyone sees all phase-1
        // messages before the phase-1 ack, so all nodes finish at
        // exactly 2 rounds = 2 * F_ack.
        for f_ack in [1u64, 5, 20] {
            let inputs = vec![0, 1, 0, 1];
            let (report, _) = run(&inputs, SynchronousScheduler::new(f_ack), false);
            assert!(report.all_decided());
            assert_eq!(report.max_decision_time(), Some(Time(2 * f_ack)));
        }
    }

    #[test]
    fn o_f_ack_bound_under_max_delay_adversary() {
        // Even when every broadcast takes the full F_ack, decisions
        // land within 4 * F_ack (two phases + witness wait).
        for f_ack in [1u64, 7, 32] {
            let inputs = vec![1, 0, 1];
            let (report, _) = run(&inputs, MaxDelayScheduler::new(f_ack), false);
            let check = check_consensus(&inputs, &report, &[]);
            check.assert_ok();
            let max = report.max_decision_time().unwrap();
            assert!(
                max.ticks() <= 4 * f_ack,
                "F_ack={f_ack}: decided at {max}, above 4*F_ack"
            );
        }
    }

    #[test]
    fn random_schedulers_never_violate_consensus() {
        for seed in 0..60 {
            let n = 2 + (seed as usize % 7);
            let inputs: Vec<Value> = (0..n).map(|i| ((seed as usize + i) % 2) as Value).collect();
            let (report, _) = run(&inputs, RandomScheduler::new(6, seed), false);
            let check = check_consensus(&inputs, &report, &[]);
            assert!(check.ok(), "seed {seed}: {:?}", check.violation);
        }
    }

    #[test]
    fn works_without_knowledge_of_n() {
        // The constructor takes no n; a singleton decides its own value.
        let inputs = vec![1];
        let (report, _) = run(&inputs, SynchronousScheduler::new(1), false);
        let check = check_consensus(&inputs, &report, &[]);
        check.assert_ok();
        assert_eq!(check.decided, Some(1));
    }

    /// The adversarial schedule from the module docs: node 0 (input 0)
    /// races through both phases before node 1's phase-1 broadcast
    /// completes, so node 0's `decided(0)` phase-2 message lands in
    /// node 1's `R_1`.
    fn racing_schedule() -> ScriptedScheduler {
        ScriptedScheduler::new(1)
            .delay(Slot(0), 0, 1) // u phase 1: fast
            .delay(Slot(0), 1, 1) // u phase 2: fast
            .delay(Slot(1), 0, 10) // v phase 1: stalled
            .delay(Slot(1), 1, 1) // v phase 2: fast
    }

    #[test]
    fn literal_r2_check_violates_agreement() {
        // Reproduces the paper's pseudocode discrepancy: with the
        // literal line-23 check (R_2 only), this schedule makes node 0
        // decide 0 and node 1 decide 1.
        let inputs = vec![0, 1];
        let (report, _) = run(&inputs, racing_schedule(), true);
        assert!(report.all_decided());
        let check = check_consensus(&inputs, &report, &[]);
        assert!(!check.agreement, "expected the documented violation");
        assert_eq!(report.decisions[0].unwrap().value, 0);
        assert_eq!(report.decisions[1].unwrap().value, 1);
    }

    #[test]
    fn union_check_fixes_the_racing_schedule() {
        let inputs = vec![0, 1];
        let (report, _) = run(&inputs, racing_schedule(), false);
        let check = check_consensus(&inputs, &report, &[]);
        check.assert_ok();
        assert_eq!(check.decided, Some(0));
    }

    #[test]
    fn statuses_cannot_conflict() {
        // After any run, decided(0) and decided(1) never coexist
        // (the key invariant in the proof of Theorem 4.1).
        for seed in 0..40 {
            let inputs: Vec<Value> = (0..5).map(|i| ((i + seed as usize) % 2) as Value).collect();
            let topo = Topology::clique(5);
            let iv = inputs.clone();
            let mut sim = SimBuilder::new(topo, |s| TwoPhase::new(iv[s.index()]))
                .scheduler(RandomScheduler::new(4, seed))
                .build();
            sim.run();
            let statuses: BTreeSet<TpStatus> = (0..5)
                .filter_map(|i| sim.process(Slot(i)).status())
                .collect();
            assert!(
                !(statuses.contains(&TpStatus::Decided(0))
                    && statuses.contains(&TpStatus::Decided(1))),
                "seed {seed}: conflicting decided statuses"
            );
        }
    }

    #[test]
    fn witness_lists_cover_heard_nodes() {
        let inputs = vec![0, 1, 0];
        let topo = Topology::clique(3);
        let iv = inputs.clone();
        let mut sim = SimBuilder::new(topo, |s| TwoPhase::new(iv[s.index()]))
            .scheduler(SynchronousScheduler::new(1))
            .build();
        sim.run();
        // Under the synchronous scheduler everyone hears everyone in
        // phase 1, so any bivalent node's witness list is all of them.
        for i in 0..3 {
            let p = sim.process(Slot(i));
            if p.status() == Some(TpStatus::Bivalent) {
                assert_eq!(p.witnesses().len(), 3);
            }
        }
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn non_binary_input_rejected() {
        TwoPhase::new(2);
    }
}
