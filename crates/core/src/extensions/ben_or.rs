//! Ben-Or-style randomized binary consensus, tolerating one crash.
//!
//! Theorem 3.2 generalizes FLP to the abstract MAC layer: no
//! *deterministic* algorithm solves consensus with a single crash
//! failure. The classic escape hatch is randomization. This module
//! implements the textbook Ben-Or protocol for `f = 1` over
//! acknowledged local broadcast in a single-hop network with known `n`:
//!
//! Round `r` has two phases:
//!
//! 1. **Report**: broadcast `(R, r, x)`; collect `n - f` reports for
//!    round `r` (own included). If a strict majority (`> n/2`) of all
//!    `n` reports collected carry the same value `v`, propose `v`, else
//!    propose `⊥`.
//! 2. **Proposal**: broadcast `(P, r, v_or_⊥)`; collect `n - f`
//!    proposals. If at least `f + 1 = 2` carry the same `v != ⊥`,
//!    *decide* `v`; if at least one does, adopt `x = v`; otherwise set
//!    `x` to a fair coin flip.
//!
//! Agreement is deterministic (two different non-`⊥` proposals in one
//! round would each need a strict majority of reports); termination
//! holds with probability 1 (once coin flips coincide, or a decided
//! value saturates, every subsequent round decides). Requires
//! `n >= 2f + 1 = 3`.

use std::collections::BTreeMap;

use amacl_model::ids::NodeId;
use amacl_model::prelude::*;
use rand::Rng;

/// Protocol phase of a message.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum BenOrPhase {
    /// First-phase value report.
    Report,
    /// Second-phase proposal (`None` encodes `⊥`).
    Proposal,
}

/// A Ben-Or message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BenOrMsg {
    /// Sender id.
    pub id: NodeId,
    /// Round number.
    pub round: u64,
    /// Phase.
    pub phase: BenOrPhase,
    /// Reported value, or proposal (`None` = `⊥`; reports always carry
    /// `Some`).
    pub value: Option<Value>,
}

impl Payload for BenOrMsg {
    fn id_count(&self) -> usize {
        1
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Stage {
    SendReport,
    AwaitReports,
    SendProposal(Option<Value>),
    AwaitProposals,
}

/// A Ben-Or node (binary inputs, `f = 1`).
pub struct BenOr {
    n: usize,
    x: Value,
    round: u64,
    stage: Stage,
    inbox: BTreeMap<(u64, BenOrPhase), BTreeMap<NodeId, Option<Value>>>,
    rounds_executed: u64,
}

impl BenOr {
    /// Crash tolerance of this implementation.
    pub const F: usize = 1;

    /// Creates a node with a binary input for a single-hop network of
    /// known size `n >= 3`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` or the input is not binary.
    pub fn new(input: Value, n: usize) -> Self {
        assert!(n > 2 * Self::F, "Ben-Or with f=1 needs n >= 3");
        assert!(input <= 1, "Ben-Or is binary");
        Self {
            n,
            x: input,
            round: 1,
            stage: Stage::SendReport,
            inbox: BTreeMap::new(),
            rounds_executed: 0,
        }
    }

    /// Rounds completed so far (termination-speed diagnostics).
    pub fn rounds_executed(&self) -> u64 {
        self.rounds_executed
    }

    /// The current estimate `x`.
    pub fn estimate(&self) -> Value {
        self.x
    }

    fn quorum(&self) -> usize {
        self.n - Self::F
    }

    fn record(&mut self, msg: BenOrMsg) {
        self.inbox
            .entry((msg.round, msg.phase))
            .or_default()
            .insert(msg.id, msg.value);
    }

    fn try_send(&mut self, ctx: &mut Context<'_, BenOrMsg>) {
        if ctx.is_busy() {
            return;
        }
        match self.stage {
            Stage::SendReport => {
                let msg = BenOrMsg {
                    id: ctx.id(),
                    round: self.round,
                    phase: BenOrPhase::Report,
                    value: Some(self.x),
                };
                self.record(msg);
                self.stage = Stage::AwaitReports;
                ctx.broadcast(msg);
            }
            Stage::SendProposal(v) => {
                let msg = BenOrMsg {
                    id: ctx.id(),
                    round: self.round,
                    phase: BenOrPhase::Proposal,
                    value: v,
                };
                self.record(msg);
                self.stage = Stage::AwaitProposals;
                ctx.broadcast(msg);
            }
            Stage::AwaitReports | Stage::AwaitProposals => {}
        }
    }

    fn advance(&mut self, ctx: &mut Context<'_, BenOrMsg>) {
        loop {
            match self.stage {
                Stage::AwaitReports => {
                    let Some(reports) = self.inbox.get(&(self.round, BenOrPhase::Report)) else {
                        return;
                    };
                    if reports.len() < self.quorum() {
                        return;
                    }
                    let mut counts = [0usize; 2];
                    for v in reports.values().flatten() {
                        counts[*v as usize] += 1;
                    }
                    let vote = if counts[0] * 2 > self.n {
                        Some(0)
                    } else if counts[1] * 2 > self.n {
                        Some(1)
                    } else {
                        None
                    };
                    self.stage = Stage::SendProposal(vote);
                    self.try_send(ctx);
                    if matches!(self.stage, Stage::SendProposal(_)) {
                        return; // still busy; the ack will resume us
                    }
                }
                Stage::AwaitProposals => {
                    let Some(props) = self.inbox.get(&(self.round, BenOrPhase::Proposal)) else {
                        return;
                    };
                    if props.len() < self.quorum() {
                        return;
                    }
                    let mut counts = [0usize; 2];
                    for v in props.values().flatten() {
                        counts[*v as usize] += 1;
                    }
                    // At most one value can have non-zero support: a
                    // non-bot proposal required a strict report
                    // majority.
                    debug_assert!(
                        counts[0] == 0 || counts[1] == 0,
                        "conflicting proposals in one round"
                    );
                    let (support, v) = if counts[0] > 0 {
                        (counts[0], 0)
                    } else {
                        (counts[1], 1)
                    };
                    if support > Self::F {
                        self.x = v;
                        ctx.decide(v);
                    } else if support >= 1 {
                        self.x = v;
                    } else {
                        self.x = ctx.rng().gen_range(0..=1);
                    }
                    // Keep participating after deciding so laggards can
                    // finish their quorums.
                    self.rounds_executed += 1;
                    self.inbox.retain(|(r, _), _| *r >= self.round);
                    self.round += 1;
                    self.stage = Stage::SendReport;
                    self.try_send(ctx);
                    if matches!(self.stage, Stage::SendReport) {
                        return;
                    }
                }
                Stage::SendReport | Stage::SendProposal(_) => {
                    self.try_send(ctx);
                    return;
                }
            }
        }
    }
}

impl Process for BenOr {
    type Msg = BenOrMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, BenOrMsg>) {
        self.try_send(ctx);
    }

    fn on_receive(&mut self, msg: BenOrMsg, ctx: &mut Context<'_, BenOrMsg>) {
        self.record(msg);
        self.advance(ctx);
    }

    fn on_ack(&mut self, ctx: &mut Context<'_, BenOrMsg>) {
        self.advance(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_consensus;

    fn run(
        inputs: &[Value],
        scheduler: impl Scheduler + 'static,
        crashes: CrashPlan,
        seed: u64,
    ) -> RunReport {
        let n = inputs.len();
        let iv = inputs.to_vec();
        let mut sim = SimBuilder::new(Topology::clique(n), |s| BenOr::new(iv[s.index()], n))
            .scheduler(scheduler)
            .crashes(crashes)
            .seed(seed)
            .message_id_budget(1)
            .max_time(Time(1_000_000))
            .build();
        sim.run()
    }

    fn crashed_flags(n: usize, slot: usize) -> Vec<bool> {
        let mut v = vec![false; n];
        v[slot] = true;
        v
    }

    #[test]
    fn uniform_inputs_decide_in_one_round_without_crashes() {
        for v in [0u64, 1] {
            let inputs = vec![v; 5];
            let report = run(&inputs, SynchronousScheduler::new(1), CrashPlan::none(), 1);
            let check = check_consensus(&inputs, &report, &[]);
            check.assert_ok();
            assert_eq!(check.decided, Some(v));
        }
    }

    #[test]
    fn mixed_inputs_terminate_and_agree_without_crashes() {
        for seed in 0..20 {
            let inputs = vec![0, 1, 0, 1, 1];
            let report = run(
                &inputs,
                RandomScheduler::new(4, seed),
                CrashPlan::none(),
                seed,
            );
            let check = check_consensus(&inputs, &report, &[]);
            assert!(check.ok(), "seed {seed}: {:?}", check.violation);
        }
    }

    #[test]
    fn survives_a_mid_broadcast_crash() {
        // The exact failure mode that kills deterministic algorithms
        // (Theorem 3.2): a node dies after delivering its broadcast to
        // only some neighbors.
        for seed in 0..20 {
            let inputs = vec![0, 1, 0, 1, 1, 0];
            let crashes = CrashPlan::new(vec![CrashSpec::MidBroadcast {
                slot: Slot(2),
                nth_broadcast: 1,
                delivered: 2,
            }]);
            let report = run(&inputs, RandomScheduler::new(3, seed), crashes, seed);
            let check = check_consensus(&inputs, &report, &crashed_flags(6, 2));
            assert!(check.ok(), "seed {seed}: {:?}", check.violation);
        }
    }

    #[test]
    fn survives_crashes_at_arbitrary_times() {
        for seed in 0..15 {
            let inputs = vec![1, 0, 1, 0, 1];
            let crashes = CrashPlan::new(vec![CrashSpec::AtTime {
                slot: Slot(0),
                time: Time(1 + seed % 7),
            }]);
            let report = run(&inputs, RandomScheduler::new(3, seed + 50), crashes, seed);
            let check = check_consensus(&inputs, &report, &crashed_flags(5, 0));
            assert!(check.ok(), "seed {seed}: {:?}", check.violation);
        }
    }

    #[test]
    fn validity_with_uniform_inputs_and_a_crash() {
        // All start 1; even with a crash, 0 can never be decided.
        for seed in 0..10 {
            let inputs = vec![1; 5];
            let crashes = CrashPlan::new(vec![CrashSpec::MidBroadcast {
                slot: Slot(4),
                nth_broadcast: 0,
                delivered: 1,
            }]);
            let report = run(&inputs, RandomScheduler::new(2, seed), crashes, seed);
            let check = check_consensus(&inputs, &report, &crashed_flags(5, 4));
            assert!(check.ok(), "seed {seed}: {:?}", check.violation);
            assert_eq!(check.decided, Some(1));
        }
    }

    #[test]
    #[should_panic(expected = "n >= 3")]
    fn tiny_network_rejected() {
        BenOr::new(0, 2);
    }
}
