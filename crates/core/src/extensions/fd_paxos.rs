//! Deterministic crash-tolerant consensus from a failure detector:
//! single-hop Paxos driven by [`EventualDetector`].
//!
//! Theorem 3.2 rules out deterministic consensus with one crash in the
//! bare abstract MAC layer model. The classical escape (named in the
//! paper's Section 5 future work) is to augment the model with a
//! failure detector. This module shows the augmentation suffices: with
//! the `◇P`-style detector of [`failure_detector`](super::failure_detector)
//! — itself implementable on the abstract MAC layer because of `F_ack`
//! — Paxos solves consensus deterministically in single-hop networks
//! with known `n`, tolerating any minority of crash failures,
//! including mid-broadcast crashes with partial delivery.
//!
//! ## Structure
//!
//! Every node is simultaneously a proposer, an acceptor, and a
//! learner; all traffic is acknowledged local broadcast, so every
//! message is seen by everyone and doubles as a failure-detector
//! heartbeat. A node with nothing queued broadcasts an explicit
//! heartbeat, so silence always means a crash (eventually).
//!
//! * The detector's Ω-style heuristic (smallest trusted id) picks the
//!   would-be proposer. While detectors disagree, several nodes may
//!   run ballots concurrently — safety is Paxos's and never depends on
//!   the detector.
//! * A proposer that observes a ballot above its own abandons its
//!   attempt; if it still believes itself leader it retries with a
//!   larger tag (observation is free: every ballot travels by
//!   broadcast).
//! * Any node that sees `Accepted` for one ballot from a majority of
//!   distinct acceptors decides and floods `Decide`.
//!
//! Liveness: once the detector stabilizes, exactly one correct node
//! considers itself leader; its next ballot outnumbers all others, a
//! correct majority of acceptors answers (their broadcasts complete,
//! by the model), and everyone decides within `O(F_ack)` — the same
//! order as Two-Phase Consensus, now with crashes.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use amacl_model::ids::NodeId;
use amacl_model::prelude::*;

use super::failure_detector::EventualDetector;

/// A Paxos ballot: compared by tag, then by proposer id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Ballot {
    /// Monotone per-proposer attempt counter.
    pub tag: u64,
    /// Proposer id (ties are impossible across proposers).
    pub proposer: NodeId,
}

/// Messages of the FD-guided Paxos. Every message carries its sender,
/// so each receipt feeds the failure detector.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FdPaxosMsg {
    /// Keep-alive from a node with nothing else to say.
    Heartbeat {
        /// Sender id.
        id: NodeId,
    },
    /// Phase-1a: a proposer solicits promises for `ballot`.
    Prepare {
        /// Sender (= proposer) id.
        id: NodeId,
        /// The ballot being prepared.
        ballot: Ballot,
    },
    /// Phase-1b: an acceptor promises not to accept below `ballot`,
    /// reporting its most recently accepted proposal, if any.
    Promise {
        /// Sender (= acceptor) id.
        id: NodeId,
        /// The ballot being promised to.
        ballot: Ballot,
        /// The acceptor's highest accepted `(ballot, value)`, if any.
        accepted: Option<(Ballot, Value)>,
    },
    /// Phase-2a: the proposer asks acceptors to accept `value` at
    /// `ballot`.
    AcceptReq {
        /// Sender (= proposer) id.
        id: NodeId,
        /// The ballot.
        ballot: Ballot,
        /// The proposed value.
        value: Value,
    },
    /// Phase-2b: an acceptor accepted `value` at `ballot`.
    Accepted {
        /// Sender (= acceptor) id.
        id: NodeId,
        /// The ballot.
        ballot: Ballot,
        /// The accepted value.
        value: Value,
    },
    /// A learner observed a majority and decided.
    Decide {
        /// Sender id.
        id: NodeId,
        /// The decided value.
        value: Value,
    },
}

impl FdPaxosMsg {
    /// The sender id (heartbeat source for the failure detector).
    pub fn sender(&self) -> NodeId {
        match *self {
            FdPaxosMsg::Heartbeat { id }
            | FdPaxosMsg::Prepare { id, .. }
            | FdPaxosMsg::Promise { id, .. }
            | FdPaxosMsg::AcceptReq { id, .. }
            | FdPaxosMsg::Accepted { id, .. }
            | FdPaxosMsg::Decide { id, .. } => id,
        }
    }

    /// The ballot the message is about, if any.
    fn ballot(&self) -> Option<Ballot> {
        match *self {
            FdPaxosMsg::Prepare { ballot, .. }
            | FdPaxosMsg::Promise { ballot, .. }
            | FdPaxosMsg::AcceptReq { ballot, .. }
            | FdPaxosMsg::Accepted { ballot, .. } => Some(ballot),
            FdPaxosMsg::Heartbeat { .. } | FdPaxosMsg::Decide { .. } => None,
        }
    }
}

impl Payload for FdPaxosMsg {
    fn id_count(&self) -> usize {
        match *self {
            FdPaxosMsg::Heartbeat { .. } | FdPaxosMsg::Decide { .. } => 1,
            FdPaxosMsg::Prepare { .. } | FdPaxosMsg::AcceptReq { .. } => 2,
            FdPaxosMsg::Accepted { .. } => 2,
            // Own id + ballot proposer + possibly an accepted ballot's
            // proposer: still a constant.
            FdPaxosMsg::Promise { .. } => 3,
        }
    }
}

/// Proposer progress within the current ballot.
#[derive(Clone, Debug, PartialEq, Eq)]
enum ProposerPhase {
    /// Not currently running a ballot.
    Idle,
    /// Collecting promises.
    Preparing {
        promises: BTreeSet<NodeId>,
        best_accepted: Option<(Ballot, Value)>,
    },
    /// Accept requests are out; learners take it from here.
    Accepting,
}

/// One node of FD-guided single-hop Paxos.
///
/// Requires knowledge of `n` (for majorities) and unique ids, and
/// tolerates any minority of crashes — parameters consistent with the
/// paper's lower bounds, which this algorithm circumvents only through
/// the added failure-detector power.
#[derive(Clone, Debug)]
pub struct FdPaxos {
    n: usize,
    input: Value,
    fd: EventualDetector,
    queue: VecDeque<FdPaxosMsg>,
    /// Acceptor state: never accept below this.
    promised: Option<Ballot>,
    /// Acceptor state: highest accepted proposal.
    accepted: Option<(Ballot, Value)>,
    /// Learner state: acceptors seen per ballot (value rides along).
    tallies: BTreeMap<Ballot, (Value, BTreeSet<NodeId>)>,
    /// Proposer state.
    phase: ProposerPhase,
    my_ballot: Option<Ballot>,
    max_seen_tag: u64,
    ballots_started: u64,
    decided: bool,
}

impl FdPaxos {
    /// Creates a node with the given input for a single-hop network of
    /// known size `n`, with the detector's initial timeout set to
    /// `initial_timeout` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or `initial_timeout` is 0.
    pub fn new(input: Value, n: usize, initial_timeout: u64) -> Self {
        assert!(n >= 1, "network size must be positive");
        Self {
            n,
            input,
            fd: EventualDetector::new(initial_timeout),
            queue: VecDeque::new(),
            promised: None,
            accepted: None,
            tallies: BTreeMap::new(),
            phase: ProposerPhase::Idle,
            my_ballot: None,
            max_seen_tag: 0,
            ballots_started: 0,
            decided: false,
        }
    }

    /// The node's input.
    pub fn input(&self) -> Value {
        self.input
    }

    /// The embedded failure detector (diagnostics).
    pub fn detector(&self) -> &EventualDetector {
        &self.fd
    }

    /// Ballots this node started (post-stabilization this stops
    /// growing; diagnostics for experiment E14).
    pub fn ballots_started(&self) -> u64 {
        self.ballots_started
    }

    fn majority(&self) -> usize {
        self.n / 2 + 1
    }

    /// Queues `m` for broadcast and, because every broadcast loops back
    /// conceptually (the sender knows its own message), processes it
    /// locally right away.
    fn send(&mut self, m: FdPaxosMsg, ctx: &mut Context<'_, FdPaxosMsg>) {
        self.queue.push_back(m);
        self.deliver_local(m, ctx);
    }

    /// Applies a message to the local acceptor/learner roles without
    /// feeding the failure detector (used for self-delivery).
    fn deliver_local(&mut self, msg: FdPaxosMsg, ctx: &mut Context<'_, FdPaxosMsg>) {
        if let Some(b) = msg.ballot() {
            self.max_seen_tag = self.max_seen_tag.max(b.tag);
        }
        match msg {
            FdPaxosMsg::Heartbeat { .. } => {}
            FdPaxosMsg::Prepare { id, ballot } => {
                if self.promised.is_none_or(|p| ballot > p) {
                    self.promised = Some(ballot);
                    let reply = FdPaxosMsg::Promise {
                        id: ctx.id(),
                        ballot,
                        accepted: self.accepted,
                    };
                    if id == ctx.id() {
                        // Our own prepare: answer without a broadcast.
                        self.deliver_local(reply, ctx);
                    } else {
                        self.queue.push_back(reply);
                    }
                }
                self.observe_rival(ballot);
            }
            FdPaxosMsg::Promise {
                id,
                ballot,
                accepted,
            } => {
                if self.my_ballot == Some(ballot) {
                    let majority = self.majority();
                    let mut ready_value = None;
                    if let ProposerPhase::Preparing {
                        promises,
                        best_accepted,
                    } = &mut self.phase
                    {
                        promises.insert(id);
                        if let Some((b, v)) = accepted {
                            if best_accepted.is_none_or(|(bb, _)| b > bb) {
                                *best_accepted = Some((b, v));
                            }
                        }
                        if promises.len() >= majority {
                            ready_value = Some(best_accepted.map(|(_, v)| v).unwrap_or(self.input));
                        }
                    }
                    if let Some(value) = ready_value {
                        self.phase = ProposerPhase::Accepting;
                        self.send(
                            FdPaxosMsg::AcceptReq {
                                id: ctx.id(),
                                ballot,
                                value,
                            },
                            ctx,
                        );
                    }
                } else {
                    self.observe_rival(ballot);
                }
            }
            FdPaxosMsg::AcceptReq { id, ballot, value } => {
                if self.promised.is_none_or(|p| ballot >= p) {
                    self.promised = Some(ballot);
                    self.accepted = Some((ballot, value));
                    let reply = FdPaxosMsg::Accepted {
                        id: ctx.id(),
                        ballot,
                        value,
                    };
                    if id == ctx.id() {
                        self.deliver_local(reply, ctx);
                    } else {
                        self.queue.push_back(reply);
                    }
                }
                self.observe_rival(ballot);
            }
            FdPaxosMsg::Accepted { id, ballot, value } => {
                let entry = self
                    .tallies
                    .entry(ballot)
                    .or_insert_with(|| (value, BTreeSet::new()));
                debug_assert_eq!(entry.0, value, "one value per ballot");
                entry.1.insert(id);
                if entry.1.len() >= self.majority() {
                    self.learn(value, ctx);
                }
            }
            FdPaxosMsg::Decide { value, .. } => {
                self.learn(value, ctx);
            }
        }
    }

    /// A ballot above our own was observed: abandon the current
    /// attempt. The leadership check will retry with a larger tag if
    /// this node still believes itself leader.
    fn observe_rival(&mut self, ballot: Ballot) {
        if let Some(mine) = self.my_ballot {
            if ballot > mine && self.phase != ProposerPhase::Idle {
                self.phase = ProposerPhase::Idle;
            }
        }
    }

    fn learn(&mut self, value: Value, ctx: &mut Context<'_, FdPaxosMsg>) {
        if !self.decided {
            self.decided = true;
            ctx.decide(value);
            self.queue.push_back(FdPaxosMsg::Decide {
                id: ctx.id(),
                value,
            });
        }
    }

    /// If this node currently believes itself leader and has no ballot
    /// in flight, start one.
    fn maybe_lead(&mut self, ctx: &mut Context<'_, FdPaxosMsg>) {
        if self.decided || self.phase != ProposerPhase::Idle {
            return;
        }
        if self.fd.leader(ctx.id()) != ctx.id() {
            return;
        }
        let ballot = Ballot {
            tag: self.max_seen_tag + 1,
            proposer: ctx.id(),
        };
        self.my_ballot = Some(ballot);
        self.ballots_started += 1;
        self.phase = ProposerPhase::Preparing {
            promises: BTreeSet::new(),
            best_accepted: None,
        };
        self.send(
            FdPaxosMsg::Prepare {
                id: ctx.id(),
                ballot,
            },
            ctx,
        );
    }

    /// Keeps exactly one broadcast outstanding: the next queued
    /// message, or a heartbeat when the queue is empty.
    fn pump(&mut self, ctx: &mut Context<'_, FdPaxosMsg>) {
        if ctx.is_busy() {
            return;
        }
        let msg = self
            .queue
            .pop_front()
            .unwrap_or(FdPaxosMsg::Heartbeat { id: ctx.id() });
        ctx.broadcast(msg);
    }
}

impl Process for FdPaxos {
    type Msg = FdPaxosMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, FdPaxosMsg>) {
        self.maybe_lead(ctx);
        self.pump(ctx);
    }

    fn on_receive(&mut self, msg: FdPaxosMsg, ctx: &mut Context<'_, FdPaxosMsg>) {
        self.fd.heard(msg.sender(), ctx.now());
        self.fd.tick(ctx.now());
        self.deliver_local(msg, ctx);
        self.maybe_lead(ctx);
        self.pump(ctx);
    }

    fn on_ack(&mut self, ctx: &mut Context<'_, FdPaxosMsg>) {
        self.fd.tick(ctx.now());
        self.maybe_lead(ctx);
        self.pump(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_consensus;

    fn run(inputs: &[Value], scheduler: impl Scheduler + 'static, crashes: CrashPlan) -> RunReport {
        let n = inputs.len();
        let iv = inputs.to_vec();
        let mut sim = SimBuilder::new(Topology::clique(n), |s| FdPaxos::new(iv[s.index()], n, 4))
            .scheduler(scheduler)
            .crashes(crashes)
            .message_id_budget(3)
            .max_time(Time(200_000))
            .build();
        sim.run()
    }

    fn crashed_flags(n: usize, slots: &[usize]) -> Vec<bool> {
        let mut v = vec![false; n];
        for &s in slots {
            v[s] = true;
        }
        v
    }

    #[test]
    fn crash_free_run_decides_an_input() {
        let inputs = vec![3, 7, 3, 9, 7];
        let report = run(&inputs, SynchronousScheduler::new(1), CrashPlan::none());
        let check = check_consensus(&inputs, &report, &[]);
        check.assert_ok();
        assert!(inputs.contains(&check.decided.unwrap()));
    }

    #[test]
    fn random_schedules_without_crashes() {
        for seed in 0..25 {
            let inputs = vec![0, 1, 2, 3, 4];
            let report = run(&inputs, RandomScheduler::new(5, seed), CrashPlan::none());
            let check = check_consensus(&inputs, &report, &[]);
            assert!(check.ok(), "seed {seed}: {:?}", check.violation);
        }
    }

    #[test]
    fn survives_one_crash_at_time_zero() {
        // The configuration Theorem 3.2 proves fatal for bare
        // deterministic algorithms.
        for seed in 0..20 {
            let inputs = vec![0, 1, 0, 1, 1];
            let crashes = CrashPlan::new(vec![CrashSpec::AtTime {
                slot: Slot(0),
                time: Time(0),
            }]);
            let report = run(&inputs, RandomScheduler::new(4, seed), crashes);
            let check = check_consensus(&inputs, &report, &crashed_flags(5, &[0]));
            assert!(check.ok(), "seed {seed}: {:?}", check.violation);
        }
    }

    #[test]
    fn survives_mid_broadcast_crash() {
        for seed in 0..20 {
            let inputs = vec![5, 6, 7, 8, 9];
            let crashes = CrashPlan::new(vec![CrashSpec::MidBroadcast {
                slot: Slot(1),
                nth_broadcast: 2,
                delivered: 2,
            }]);
            let report = run(&inputs, RandomScheduler::new(3, seed), crashes);
            let check = check_consensus(&inputs, &report, &crashed_flags(5, &[1]));
            assert!(check.ok(), "seed {seed}: {:?}", check.violation);
        }
    }

    #[test]
    fn survives_two_crashes_with_n_five() {
        // f = 2 < n/2: the decisive majority is the three survivors.
        for seed in 0..15 {
            let inputs = vec![1, 2, 3, 4, 5];
            let crashes = CrashPlan::new(vec![
                CrashSpec::AtTime {
                    slot: Slot(3),
                    time: Time(2),
                },
                CrashSpec::MidBroadcast {
                    slot: Slot(4),
                    nth_broadcast: 1,
                    delivered: 1,
                },
            ]);
            let report = run(&inputs, RandomScheduler::new(4, seed), crashes);
            let check = check_consensus(&inputs, &report, &crashed_flags(5, &[3, 4]));
            assert!(check.ok(), "seed {seed}: {:?}", check.violation);
        }
    }

    #[test]
    fn crashing_the_initial_leader_recovers() {
        // Ids equal slot indices, so slot 0 is the initial leader
        // everywhere; kill it mid-ballot.
        for seed in 0..15 {
            let inputs = vec![0, 1, 0, 1, 0];
            let crashes = CrashPlan::new(vec![CrashSpec::MidBroadcast {
                slot: Slot(0),
                nth_broadcast: 0,
                delivered: 2,
            }]);
            let report = run(&inputs, RandomScheduler::new(6, seed), crashes);
            let check = check_consensus(&inputs, &report, &crashed_flags(5, &[0]));
            assert!(check.ok(), "seed {seed}: {:?}", check.violation);
        }
    }

    #[test]
    fn uniform_inputs_stay_valid_under_crashes() {
        for seed in 0..10 {
            let inputs = vec![7; 5];
            let crashes = CrashPlan::new(vec![CrashSpec::AtTime {
                slot: Slot(2),
                time: Time(1),
            }]);
            let report = run(&inputs, RandomScheduler::new(3, seed), crashes);
            let check = check_consensus(&inputs, &report, &crashed_flags(5, &[2]));
            assert!(check.ok(), "seed {seed}: {:?}", check.violation);
            assert_eq!(check.decided, Some(7));
        }
    }

    #[test]
    fn singleton_decides_itself() {
        let inputs = vec![11];
        let report = run(&inputs, SynchronousScheduler::new(1), CrashPlan::none());
        let check = check_consensus(&inputs, &report, &[]);
        check.assert_ok();
        assert_eq!(check.decided, Some(11));
    }

    #[test]
    fn diagnostics_accessors() {
        let node = FdPaxos::new(4, 3, 2);
        assert_eq!(node.input(), 4);
        assert_eq!(node.ballots_started(), 0);
        assert_eq!(node.detector().false_suspicions(), 0);
    }
}
