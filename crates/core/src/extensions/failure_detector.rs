//! An eventually-perfect failure detector on the abstract MAC layer.
//!
//! The paper's conclusion (Section 5) names, as its second future-work
//! direction, finding "additional formalisms \[that\] might allow
//! deterministic consensus solutions to circumvent the impossibility
//! concerning crash failures", noting that in the classical setting
//! *failure detectors* played this role. This module makes that
//! concrete: a heartbeat-based detector with the `◇P`
//! (eventually-perfect) interface — *strong completeness* (every
//! crashed node is eventually suspected by every correct node, forever)
//! and *eventual strong accuracy* (correct nodes are eventually never
//! suspected).
//!
//! ## Why the abstract MAC layer supports `◇P`
//!
//! In the plain asynchronous model `◇P` cannot be implemented; it is an
//! oracle. The abstract MAC layer's `F_ack` bound changes that: a node
//! that broadcasts *continuously* (re-broadcasting as soon as each ack
//! arrives) delivers a message to every neighbor at least once every
//! `2 * F_ack` ticks — each broadcast completes within `F_ack`, and the
//! gap between the previous delivery to a particular neighbor and the
//! next spans at most two broadcast windows. `F_ack` is unknown to the
//! nodes, so a fixed timeout cannot work; instead each false suspicion
//! doubles the suspect's timeout, so per monitored node the timeout
//! exceeds `2 * F_ack` after finitely many mistakes and accuracy holds
//! thereafter. Completeness is immediate: a crashed node stops
//! broadcasting, so its silence eventually exceeds any finite timeout.
//!
//! The detector is a passive component: the embedding algorithm calls
//! [`EventualDetector::heard`] for every received message and
//! [`EventualDetector::tick`] on every callback (receipts and acks both
//! work — a continuously-broadcasting node gets callbacks at least
//! every `F_ack`).

use std::collections::{BTreeMap, BTreeSet};

use amacl_model::ids::NodeId;
use amacl_model::sim::time::Time;

/// A heartbeat-driven eventually-perfect (`◇P`-style) failure detector
/// for one node.
///
/// Monitors every node it has ever heard from. Time is the simulator's
/// virtual clock as observed through callback timestamps; the detector
/// never assumes a relationship between the clock and `F_ack`.
///
/// # Examples
///
/// ```
/// use amacl_core::extensions::failure_detector::EventualDetector;
/// use amacl_model::ids::NodeId;
/// use amacl_model::sim::time::Time;
///
/// let mut fd = EventualDetector::new(4);
/// fd.heard(NodeId(9), Time(10));
/// fd.tick(Time(12));
/// assert!(!fd.is_suspected(NodeId(9)));
/// fd.tick(Time(20)); // silence beyond the timeout
/// assert!(fd.is_suspected(NodeId(9)));
/// fd.heard(NodeId(9), Time(21)); // false suspicion: timeout doubles
/// assert!(!fd.is_suspected(NodeId(9)));
/// assert_eq!(fd.timeout_of(NodeId(9)), Some(8));
/// ```
#[derive(Clone, Debug)]
pub struct EventualDetector {
    initial_timeout: u64,
    last_heard: BTreeMap<NodeId, Time>,
    timeout: BTreeMap<NodeId, u64>,
    suspects: BTreeSet<NodeId>,
    false_suspicions: u64,
}

impl EventualDetector {
    /// Creates a detector whose per-node timeout starts at
    /// `initial_timeout` ticks.
    ///
    /// The starting value only affects how many early mistakes are
    /// made, not correctness; it must be at least 1.
    ///
    /// # Panics
    ///
    /// Panics if `initial_timeout` is 0 (a zero timeout would suspect a
    /// node in the same instant it was heard).
    pub fn new(initial_timeout: u64) -> Self {
        assert!(initial_timeout >= 1, "timeout must be at least 1 tick");
        Self {
            initial_timeout,
            last_heard: BTreeMap::new(),
            timeout: BTreeMap::new(),
            suspects: BTreeSet::new(),
            false_suspicions: 0,
        }
    }

    /// Records a message from `id` at time `now`. If `id` was
    /// suspected, the suspicion was false: it is withdrawn and `id`'s
    /// timeout doubles (saturating), which is what makes accuracy
    /// *eventual*.
    pub fn heard(&mut self, id: NodeId, now: Time) {
        self.last_heard.insert(id, now);
        self.timeout.entry(id).or_insert(self.initial_timeout);
        if self.suspects.remove(&id) {
            self.false_suspicions += 1;
            let t = self.timeout.get_mut(&id).expect("timeout entry exists");
            *t = t.saturating_mul(2);
        }
    }

    /// Re-evaluates suspicions at time `now`: any monitored node silent
    /// for longer than its current timeout becomes suspected.
    pub fn tick(&mut self, now: Time) {
        for (&id, &last) in &self.last_heard {
            let timeout = self.timeout[&id];
            if now.ticks().saturating_sub(last.ticks()) > timeout {
                self.suspects.insert(id);
            }
        }
    }

    /// `true` if `id` is currently suspected of having crashed.
    pub fn is_suspected(&self, id: NodeId) -> bool {
        self.suspects.contains(&id)
    }

    /// Every node this detector has ever heard from.
    pub fn known(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.last_heard.keys().copied()
    }

    /// The currently trusted (heard-from and unsuspected) nodes.
    pub fn trusted(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.last_heard
            .keys()
            .copied()
            .filter(move |id| !self.suspects.contains(id))
    }

    /// The current timeout for `id`, if monitored.
    pub fn timeout_of(&self, id: NodeId) -> Option<u64> {
        self.timeout.get(&id).copied()
    }

    /// Number of suspicions later withdrawn (diagnostics; bounded per
    /// node once its timeout exceeds `2 * F_ack`).
    pub fn false_suspicions(&self) -> u64 {
        self.false_suspicions
    }

    /// An Ω-style leader heuristic: the smallest trusted id, falling
    /// back to `me` when it is smaller or nothing is trusted.
    ///
    /// Once the detector is accurate and complete, every correct node
    /// computes the same leader: the smallest id among correct nodes
    /// it has heard from — and with continuous broadcasting everyone
    /// hears everyone within `F_ack`.
    pub fn leader(&self, me: NodeId) -> NodeId {
        self.trusted().chain(std::iter::once(me)).min().expect("me")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_detector_trusts_nobody_but_suspects_nobody() {
        let fd = EventualDetector::new(4);
        assert!(!fd.is_suspected(NodeId(1)));
        assert_eq!(fd.trusted().count(), 0);
        assert_eq!(fd.known().count(), 0);
        assert_eq!(fd.false_suspicions(), 0);
    }

    #[test]
    fn silence_beyond_timeout_suspects() {
        let mut fd = EventualDetector::new(3);
        fd.heard(NodeId(5), Time(0));
        fd.tick(Time(3));
        assert!(!fd.is_suspected(NodeId(5)), "exactly at timeout: trusted");
        fd.tick(Time(4));
        assert!(fd.is_suspected(NodeId(5)));
        assert_eq!(fd.trusted().count(), 0);
        assert_eq!(fd.known().count(), 1);
    }

    #[test]
    fn false_suspicion_doubles_timeout() {
        let mut fd = EventualDetector::new(2);
        fd.heard(NodeId(5), Time(0));
        fd.tick(Time(5));
        assert!(fd.is_suspected(NodeId(5)));
        fd.heard(NodeId(5), Time(6));
        assert!(!fd.is_suspected(NodeId(5)));
        assert_eq!(fd.false_suspicions(), 1);
        assert_eq!(fd.timeout_of(NodeId(5)), Some(4));
        // Now a gap of 4 is tolerated.
        fd.tick(Time(10));
        assert!(!fd.is_suspected(NodeId(5)));
        fd.tick(Time(11));
        assert!(fd.is_suspected(NodeId(5)));
    }

    #[test]
    fn timeouts_are_per_node() {
        let mut fd = EventualDetector::new(2);
        fd.heard(NodeId(1), Time(0));
        fd.heard(NodeId(2), Time(0));
        fd.tick(Time(3));
        fd.heard(NodeId(1), Time(3)); // only node 1's timeout doubles
        assert_eq!(fd.timeout_of(NodeId(1)), Some(4));
        assert_eq!(fd.timeout_of(NodeId(2)), Some(2));
    }

    #[test]
    fn leader_is_smallest_trusted_or_self() {
        let mut fd = EventualDetector::new(10);
        assert_eq!(fd.leader(NodeId(7)), NodeId(7));
        fd.heard(NodeId(3), Time(0));
        fd.heard(NodeId(12), Time(0));
        assert_eq!(fd.leader(NodeId(7)), NodeId(3));
        fd.tick(Time(100)); // 3 and 12 both go silent
        assert_eq!(fd.leader(NodeId(7)), NodeId(7));
        fd.heard(NodeId(12), Time(101));
        assert_eq!(fd.leader(NodeId(7)), NodeId(7));
        assert_eq!(fd.leader(NodeId(20)), NodeId(12));
    }

    #[test]
    fn completeness_holds_forever_after_crash() {
        // A node that stops sending stays suspected through any number
        // of later ticks.
        let mut fd = EventualDetector::new(1);
        fd.heard(NodeId(4), Time(0));
        for t in 2..50 {
            fd.tick(Time(t));
            assert!(fd.is_suspected(NodeId(4)), "t={t}");
        }
    }

    #[test]
    fn eventual_accuracy_with_bounded_gap() {
        // A correct node delivering at least every g ticks is suspected
        // only finitely often: after enough doublings the timeout
        // exceeds g.
        let g = 16u64;
        let mut fd = EventualDetector::new(1);
        let mut t = 0u64;
        for _ in 0..200 {
            fd.heard(NodeId(9), Time(t));
            t += g;
            fd.tick(Time(t));
        }
        let before = fd.false_suspicions();
        for _ in 0..200 {
            fd.heard(NodeId(9), Time(t));
            t += g;
            fd.tick(Time(t));
        }
        assert_eq!(fd.false_suspicions(), before, "no further mistakes");
        assert!(fd.timeout_of(NodeId(9)).unwrap() >= g);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_timeout_rejected() {
        EventualDetector::new(0);
    }
}
