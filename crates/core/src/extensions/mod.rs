//! Extensions: the paper's future-work directions, made concrete.
//!
//! Section 5 names three next steps; all three are exercised in this
//! repo:
//!
//! * **Randomization** ([`ben_or`]): Theorem 3.2 kills *deterministic*
//!   consensus under a single crash failure. A Ben-Or-style randomized
//!   algorithm terminates with probability 1 and keeps agreement and
//!   validity deterministic — experiment E10 runs it through the very
//!   mid-broadcast crash schedules that break the deterministic
//!   algorithms.
//! * **Failure detectors** ([`failure_detector`], [`fd_paxos`]): the
//!   classical formalism the paper suggests for circumventing the
//!   crash impossibility *deterministically*. The `F_ack` bound makes
//!   an eventually-perfect detector implementable inside the model
//!   (impossible in plain asynchrony), and Paxos guided by it
//!   tolerates any minority of crashes — experiment E14.
//! * **Unreliable links**: handled at the model layer
//!   ([`amacl_model::topo::unreliable`]); experiment E10 checks that
//!   wPAXOS's safety survives spurious extra deliveries.

pub mod ben_or;
pub mod failure_detector;
pub mod fd_paxos;
