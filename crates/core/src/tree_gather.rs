//! Tree-gather consensus: the paper's "something simpler" on the same
//! service stack.
//!
//! Section 4.2 notes that, given unique ids, knowledge of `n`, and no
//! crash failures, the Paxos logic riding on the support services could
//! be replaced by something simpler — e.g. gathering all values. This
//! module implements that alternative: leader election and tree
//! building exactly as in wPAXOS (Algorithms 2 and 4, reused verbatim),
//! with each node *convergecasting* its input up the leader's
//! shortest-path tree as an aggregated `(count, min)` pair. A leader
//! that has counted all `n` contributions decides the global minimum
//! and floods the decision.
//!
//! Safety does not depend on leader uniqueness: a contribution is
//! tagged with the leader it was aimed at, tags partition the counts,
//! and *any* node that assembles a full count of `n` has necessarily
//! folded in every input — so every possible decision equals the global
//! minimum. Lost routes are impossible by construction: an aggregate
//! whose next hop toward its leader is still unknown simply stays
//! queued until the tree provides one.
//!
//! Compared to wPAXOS this loses the majority-progress property (the
//! leader must hear from *all* `n` nodes, so one slow region stalls
//! everyone — the reason the paper prefers Paxos), which experiment
//! runs make visible under skewed schedulers.

use std::collections::VecDeque;

use amacl_model::ids::NodeId;
use amacl_model::prelude::*;

use crate::wpaxos::{LeaderService, SearchMsg, TreeService};

/// An aggregated contribution in flight toward `leader`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Contribution {
    /// Next hop (nodes other than `dest` ignore the message).
    pub dest: NodeId,
    /// Which leader's gather round this belongs to.
    pub leader: NodeId,
    /// Number of distinct nodes folded into this aggregate.
    pub count: u64,
    /// Minimum input value among them.
    pub min: Value,
}

/// The multiplexed message (one slot per service, as in Algorithm 5).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TgMsg {
    /// Sender (consumed by the tree service as the parent candidate).
    pub sender: Option<NodeId>,
    /// Leader-election payload.
    pub leader: Option<NodeId>,
    /// Tree-building payload.
    pub search: Option<SearchMsg>,
    /// Convergecast payload.
    pub contrib: Option<Contribution>,
    /// Flooded decision.
    pub decide: Option<Value>,
}

impl TgMsg {
    fn is_empty(&self) -> bool {
        self.leader.is_none()
            && self.search.is_none()
            && self.contrib.is_none()
            && self.decide.is_none()
    }
}

impl Payload for TgMsg {
    fn id_count(&self) -> usize {
        usize::from(self.sender.is_some())
            + usize::from(self.leader.is_some())
            + usize::from(self.search.is_some())
            + self.contrib.map_or(0, |_| 2) // dest + leader tag
    }
}

/// One tree-gather node.
#[derive(Clone, Debug)]
pub struct TreeGather {
    input: Value,
    n: usize,
    inner: Option<Inner>,
}

#[derive(Clone, Debug)]
struct Inner {
    me: NodeId,
    leader: LeaderService,
    tree: TreeService,
    /// Aggregates awaiting relay, keyed by leader tag (destination is
    /// recomputed at send time, so nothing is ever dropped for lack of
    /// a parent).
    queue: VecDeque<(NodeId, u64, Value)>,
    /// The leader tag this node has already contributed toward.
    contributed_to: Option<NodeId>,
    /// As a (believed) leader: contributions counted so far.
    counted: u64,
    /// As a (believed) leader: running minimum.
    min_seen: Value,
    decided: Option<Value>,
}

impl TreeGather {
    /// Creates a node with its input and the known network size.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(input: Value, n: usize) -> Self {
        assert!(n > 0);
        Self {
            input,
            n,
            inner: None,
        }
    }

    /// Contributions the local (believed-)leader has counted.
    pub fn counted(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.counted)
    }

    /// Current leader estimate, once started.
    pub fn omega(&self) -> Option<NodeId> {
        self.inner.as_ref().map(|i| i.leader.omega())
    }

    fn inner(&mut self) -> &mut Inner {
        self.inner.as_mut().expect("started")
    }

    fn fold(&mut self, leader: NodeId, count: u64, min: Value, ctx: &mut Context<'_, TgMsg>) {
        let me = self.inner().me;
        if leader == me {
            let n = self.n as u64;
            let inner = self.inner();
            inner.counted += count;
            inner.min_seen = inner.min_seen.min(min);
            debug_assert!(inner.counted <= n, "counted more contributions than nodes");
            if inner.counted == n {
                let value = inner.min_seen;
                self.adopt(value, ctx);
            }
        } else {
            // Merge into the queue by leader tag.
            let inner = self.inner();
            if let Some(entry) = inner.queue.iter_mut().find(|(l, _, _)| *l == leader) {
                entry.1 += count;
                entry.2 = entry.2.min(min);
            } else {
                inner.queue.push_back((leader, count, min));
            }
        }
    }

    fn adopt(&mut self, value: Value, ctx: &mut Context<'_, TgMsg>) {
        if self.inner().decided.is_none() {
            self.inner().decided = Some(value);
            ctx.decide(value);
        }
    }

    /// Contributes this node's own input toward the current leader, at
    /// most once per leader tag.
    fn try_contribute(&mut self, ctx: &mut Context<'_, TgMsg>) {
        let omega = self.inner().leader.omega();
        if self.inner().contributed_to == Some(omega) {
            return;
        }
        self.inner().contributed_to = Some(omega);
        let input = self.input;
        self.fold(omega, 1, input, ctx);
    }

    fn maybe_send(&mut self, ctx: &mut Context<'_, TgMsg>) {
        if ctx.is_busy() {
            return;
        }
        let me = self.inner().me;
        // Pick the first queued aggregate whose next hop is known; the
        // rest wait for the tree to grow.
        let contrib = {
            let inner = self.inner.as_mut().expect("started");
            let mut pick = None;
            for (idx, &(leader, count, min)) in inner.queue.iter().enumerate() {
                if let Some(parent) = inner.tree.parent_of(leader) {
                    if parent != me {
                        pick = Some((idx, leader, count, min, parent));
                        break;
                    }
                }
            }
            pick.map(|(idx, leader, count, min, parent)| {
                inner.queue.remove(idx);
                Contribution {
                    dest: parent,
                    leader,
                    count,
                    min,
                }
            })
        };
        let inner = self.inner.as_mut().expect("started");
        let msg = TgMsg {
            sender: Some(me),
            leader: inner.leader.pop(),
            search: inner.tree.pop(),
            contrib,
            decide: inner.decided,
        };
        if !msg.is_empty() {
            ctx.broadcast(msg);
        }
    }
}

impl Process for TreeGather {
    type Msg = TgMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, TgMsg>) {
        let me = ctx.id();
        self.inner = Some(Inner {
            me,
            leader: LeaderService::new(me),
            tree: TreeService::new(me, true),
            queue: VecDeque::new(),
            contributed_to: None,
            counted: 0,
            min_seen: Value::MAX,
            decided: None,
        });
        self.try_contribute(ctx);
        self.maybe_send(ctx);
    }

    fn on_receive(&mut self, msg: TgMsg, ctx: &mut Context<'_, TgMsg>) {
        if self.inner.is_none() {
            return;
        }
        let sender = msg.sender.expect("tree-gather messages carry senders");

        if let Some(v) = msg.decide {
            self.adopt(v, ctx);
        }

        if let Some(lid) = msg.leader {
            if self.inner().leader.receive(lid) {
                let omega = self.inner().leader.omega();
                self.inner().tree.on_leader_change(omega);
                self.try_contribute(ctx);
            }
        }

        if let Some(sm) = msg.search {
            let omega = self.inner().leader.omega();
            self.inner().tree.receive(sm, sender, omega);
        }

        if let Some(c) = msg.contrib {
            if c.dest == self.inner().me {
                self.fold(c.leader, c.count, c.min, ctx);
            }
        }

        self.maybe_send(ctx);
    }

    fn on_ack(&mut self, ctx: &mut Context<'_, TgMsg>) {
        if self.inner.is_some() {
            self.maybe_send(ctx);
        }
    }
}

/// Runs tree-gather over a topology (helper mirroring
/// [`harness::run_wpaxos`](crate::harness::run_wpaxos)).
pub fn run_tree_gather(
    topo: Topology,
    inputs: &[Value],
    scheduler: impl Scheduler + 'static,
) -> crate::harness::ConsensusRun {
    assert_eq!(topo.len(), inputs.len(), "one input per node");
    let n = inputs.len();
    let iv = inputs.to_vec();
    let mut sim = SimBuilder::new(topo, |s| TreeGather::new(iv[s.index()], n))
        .scheduler(scheduler)
        .message_id_budget(5)
        .build();
    let report = sim.run();
    let check = crate::verify::check_consensus(inputs, &report, &[]);
    crate::harness::ConsensusRun {
        inputs: inputs.to_vec(),
        report,
        check,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_decides_itself() {
        let run = run_tree_gather(
            Topology::from_edges(1, &[]),
            &[9],
            SynchronousScheduler::new(1),
        );
        run.check.assert_ok();
        assert_eq!(run.check.decided, Some(9));
    }

    #[test]
    fn decides_global_min_on_lines() {
        let inputs = vec![5, 3, 8, 1, 7];
        let run = run_tree_gather(Topology::line(5), &inputs, SynchronousScheduler::new(1));
        run.check.assert_ok();
        assert_eq!(run.check.decided, Some(1));
    }

    #[test]
    fn works_across_topologies_and_schedulers() {
        for seed in 0..12 {
            let topo = Topology::random_connected(10, 0.2, seed);
            let inputs: Vec<Value> = (0..10).map(|i| (i as u64 + seed) % 2).collect();
            let run = run_tree_gather(topo, &inputs, RandomScheduler::new(4, seed * 3 + 1));
            assert!(run.check.ok(), "seed {seed}: {:?}", run.check.violation);
            assert_eq!(run.check.decided, Some(0), "seed {seed}");
        }
    }

    #[test]
    fn grid_under_max_delay() {
        let inputs: Vec<Value> = (0..12).map(|i| i % 3 + 1).collect();
        let run = run_tree_gather(Topology::grid(4, 3), &inputs, MaxDelayScheduler::new(5));
        run.check.assert_ok();
        assert_eq!(run.check.decided, Some(1));
    }

    #[test]
    fn contribution_counts_are_exact() {
        // On a synchronous run the final leader counted exactly n.
        let n = 7;
        let inputs: Vec<Value> = (0..n as u64).collect();
        let iv = inputs.clone();
        let mut sim = SimBuilder::new(Topology::ring(n), |s| TreeGather::new(iv[s.index()], n))
            .scheduler(SynchronousScheduler::new(1))
            .message_id_budget(5)
            .build();
        let report = sim.run();
        assert!(report.all_decided());
        // The max-id node (slot n-1 with default ids) is the leader.
        assert_eq!(sim.process(Slot(n - 1)).counted(), n as u64);
    }

    #[test]
    fn messages_stay_within_constant_id_budget() {
        // Budget 5 is enforced at build time in run_tree_gather; a
        // violation would have panicked in the other tests. Check the
        // arithmetic directly too.
        let full = TgMsg {
            sender: Some(NodeId(0)),
            leader: Some(NodeId(1)),
            search: Some(SearchMsg {
                root: NodeId(2),
                hops: 1,
            }),
            contrib: Some(Contribution {
                dest: NodeId(3),
                leader: NodeId(4),
                count: 1000,
                min: 0,
            }),
            decide: Some(1),
        };
        assert_eq!(full.id_count(), 5);
    }
}
