//! Mechanical verification of the consensus properties.
//!
//! The consensus problem (paper Section 2) requires:
//!
//! 1. **agreement** — no two nodes decide different values;
//! 2. **validity** — a decided value was some node's initial value;
//! 3. **termination** — every non-faulty node eventually decides.
//!
//! [`check_consensus`] evaluates all three against a finished
//! [`RunReport`], so tests assert on a structured verdict instead of
//! re-deriving the conditions ad hoc.

use amacl_model::prelude::*;
use amacl_model::proc::Decision;

/// Verdict on one execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConsensusCheck {
    /// No two decided values differ.
    pub agreement: bool,
    /// Every decided value was somebody's input.
    pub validity: bool,
    /// Every non-crashed node decided.
    pub termination: bool,
    /// The single agreed value, when agreement holds and someone
    /// decided.
    pub decided: Option<Value>,
    /// Human-readable description of the first violation found.
    pub violation: Option<String>,
}

impl ConsensusCheck {
    /// `true` when all three properties hold.
    pub fn ok(&self) -> bool {
        self.agreement && self.validity && self.termination
    }

    /// Panics with the violation description unless all properties
    /// hold. Convenient in tests.
    pub fn assert_ok(&self) {
        assert!(
            self.ok(),
            "consensus violation: {}",
            self.violation.as_deref().unwrap_or("unknown")
        );
    }
}

/// Checks agreement, validity, and termination for an execution with
/// the given per-slot `inputs`. `crashed[i]` marks nodes exempt from
/// termination; pass `&[]` when nothing crashed.
///
/// # Panics
///
/// Panics if `inputs` length does not match the report, or `crashed`
/// is non-empty with a mismatched length.
pub fn check_consensus(inputs: &[Value], report: &RunReport, crashed: &[bool]) -> ConsensusCheck {
    assert_eq!(
        inputs.len(),
        report.decisions.len(),
        "one input per simulated node"
    );
    assert!(
        crashed.is_empty() || crashed.len() == inputs.len(),
        "crash vector length mismatch"
    );
    let is_crashed = |i: usize| crashed.get(i).copied().unwrap_or(false);

    let mut violation = None;
    let decided_values = report.decided_values();

    let agreement = decided_values.len() <= 1;
    if !agreement {
        violation = Some(format!(
            "agreement violated: decided values {decided_values:?}"
        ));
    }

    let mut validity = true;
    for (i, d) in report.decisions.iter().enumerate() {
        if let Some(Decision { value, .. }) = d {
            if !inputs.contains(value) {
                validity = false;
                violation.get_or_insert(format!(
                    "validity violated: slot {i} decided {value}, not an input"
                ));
                break;
            }
        }
    }

    let mut termination = true;
    for (i, d) in report.decisions.iter().enumerate() {
        if d.is_none() && !is_crashed(i) {
            termination = false;
            violation.get_or_insert(format!(
                "termination violated: non-faulty slot {i} never decided"
            ));
            break;
        }
    }

    ConsensusCheck {
        agreement,
        validity,
        termination,
        decided: if agreement {
            decided_values.first().copied()
        } else {
            None
        },
        violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amacl_model::proc::Decision;
    use amacl_model::sim::engine::{RunOutcome, RunReport};
    use amacl_model::sim::trace::Metrics;

    fn report(decisions: Vec<Option<Decision>>) -> RunReport {
        RunReport {
            outcome: RunOutcome::AllDecided,
            end_time: Time(10),
            decisions,
            metrics: Metrics::new(0),
        }
    }

    fn d(value: Value) -> Option<Decision> {
        Some(Decision {
            value,
            time: Time(1),
        })
    }

    #[test]
    fn clean_run_passes() {
        let r = report(vec![d(1), d(1), d(1)]);
        let c = check_consensus(&[0, 1, 1], &r, &[]);
        assert!(c.ok());
        assert_eq!(c.decided, Some(1));
        c.assert_ok();
    }

    #[test]
    fn detects_agreement_violation() {
        let r = report(vec![d(0), d(1)]);
        let c = check_consensus(&[0, 1], &r, &[]);
        assert!(!c.agreement);
        assert!(!c.ok());
        assert!(c.violation.unwrap().contains("agreement"));
    }

    #[test]
    fn detects_validity_violation() {
        let r = report(vec![d(7), d(7)]);
        let c = check_consensus(&[0, 1], &r, &[]);
        assert!(!c.validity);
        assert!(c.violation.unwrap().contains("validity"));
    }

    #[test]
    fn detects_termination_violation() {
        let r = report(vec![d(1), None]);
        let c = check_consensus(&[1, 1], &r, &[]);
        assert!(!c.termination);
        assert!(c.violation.unwrap().contains("termination"));
    }

    #[test]
    fn crashed_nodes_exempt_from_termination() {
        let r = report(vec![d(1), None]);
        let c = check_consensus(&[1, 1], &r, &[false, true]);
        assert!(c.termination);
        assert!(c.ok());
    }

    #[test]
    #[should_panic(expected = "consensus violation")]
    fn assert_ok_panics_on_violation() {
        let r = report(vec![d(0), d(1)]);
        check_consensus(&[0, 1], &r, &[]).assert_ok();
    }
}
