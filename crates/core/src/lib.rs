//! # `amacl-core`: consensus algorithms for the abstract MAC layer
//!
//! This crate implements the algorithmic contributions of Newport,
//! *Consensus with an Abstract MAC Layer* (PODC 2014), on top of the
//! model substrate in [`amacl_model`]:
//!
//! * [`two_phase`] — **Two-Phase Consensus** (Algorithm 1): solves
//!   consensus in single-hop networks in `O(F_ack)` time with unique
//!   ids but *no* knowledge of the network size or participants
//!   (Theorem 4.1). This separates the abstract MAC layer model from
//!   the plain asynchronous broadcast model, where consensus is
//!   impossible under those assumptions.
//! * [`wpaxos`] — **wireless PAXOS** (Section 4.2): solves consensus in
//!   arbitrary connected multihop networks in `O(D * F_ack)` time,
//!   assuming unique ids and knowledge of `n` (both required by the
//!   paper's lower bounds). Combines Paxos proposer/acceptor logic with
//!   the paper's four support services: leader election, shortest-path
//!   tree building, change notification, and a broadcast multiplexer
//!   (Algorithms 2–5), plus in-network response aggregation.
//! * [`baselines`] — the comparison points the paper argues against:
//!   flooding-based Paxos without tree aggregation (`Theta(n * F_ack)`
//!   at bottlenecks), a flood-and-gather algorithm that needs `n`, and
//!   the anonymous flooding algorithm used by the lower-bound demos.
//! * [`extensions`] — the paper's named future-work directions made
//!   concrete: a Ben-Or-style randomized consensus that circumvents the
//!   crash-failure impossibility of Theorem 3.2, and an
//!   eventually-perfect failure detector with a rotating-coordinator
//!   consensus built on it.
//! * [`multivalued`] — the paper's open question of generalizing
//!   binary consensus to arbitrary value sets: bitwise composition of
//!   the Algorithm 1 logic (`O(B * F_ack)` for `B`-bit values, still
//!   with no knowledge of `n`).
//! * [`harness`] / [`verify`] — run helpers and mechanical checking of
//!   agreement, validity, and termination.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod extensions;
pub mod harness;
pub mod multivalued;
pub mod tree_gather;
pub mod two_phase;
pub mod verify;
pub mod wpaxos;
