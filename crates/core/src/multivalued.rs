//! Multi-valued consensus by bitwise composition of Two-Phase
//! Consensus.
//!
//! The paper studies *binary* consensus and notes (Section 2) that
//! generalizing the upper bounds to an arbitrary value set efficiently
//! is non-trivial and open — the obvious approach is "agreeing on the
//! bits of a general value, one by one, using binary consensus". This
//! module implements exactly that obvious approach, carefully, so its
//! cost can be measured against the direct alternatives (experiment
//! E13):
//!
//! * [`BitwiseTwoPhase`] decides an arbitrary `B`-bit value on a
//!   single-hop network in `O(B * F_ack)` time, running `B` sequential
//!   rounds of the Algorithm 1 logic, one per bit (most significant
//!   first). Like Algorithm 1 — and unlike wPAXOS — it needs **no
//!   knowledge of `n`** and no participant information, so it inherits
//!   the separation from the asynchronous broadcast model.
//! * The direct comparison point is wPAXOS run on a clique: Paxos logic
//!   is value-agnostic, so it decides a full `u64` in `O(F_ack)` time —
//!   but requires knowledge of `n`. The `B`-fold gap between the two is
//!   the concrete content of the paper's "non-trivial and open" remark.
//!
//! ## Why naive bitwise composition is wrong, and what this does
//!
//! Deciding each bit independently breaks *validity*: with inputs
//! `0b01` and `0b10`, per-bit majority could assemble `0b00` or `0b11`,
//! neither of which was proposed. The standard fix, used here, is
//! **prefix-constrained candidates**:
//!
//! * every node maintains a *candidate* value, initially its input;
//! * in round `r`, a node proposes bit `r` of its candidate (messages
//!   carry the full candidate value);
//! * after round `r` decides bit `b_r`, a node whose candidate
//!   disagrees **adopts** the smallest candidate value it has *seen*
//!   whose bits `0..=r` match the agreed prefix.
//!
//! The invariant is that at the start of every round each node's
//! candidate (a) is some node's input, and (b) matches the agreed
//! prefix. The adoption step never deadlocks: if round `r` decided 0,
//! some witness had status `decided(0)` and its phase-2 message —
//! which the adopting node waited for — carried a matching candidate.
//! If the round decided the default 1 and a node's own candidate has
//! bit 0, a matching candidate may not have arrived *yet* (bivalence
//! can be learned second-hand, through another node's `bivalent`
//! phase-2 status, before the conflicting phase-1 message itself
//! lands). But bit 1 can only be decided if some node *proposed* 1
//! this round, and with no crashes that node's broadcast is delivered
//! to everyone within `F_ack`; the adopter parks in a
//! *pending-adoption* state and completes on its arrival, adding at
//! most one `F_ack` to the round. After the last round every
//! candidate equals the assembled value, which is therefore an input.
//!
//! Rounds interleave across nodes (a fast node can be two rounds
//! ahead); messages are tagged with their round and buffered until the
//! receiver enters that round. Because a buffered message arrived
//! before the receiver's round-`r` phase-1 ack, it is replayed into
//! `R_1`, preserving the ack-ordering argument of Theorem 4.1 round by
//! round.

use std::collections::{BTreeMap, BTreeSet};

use amacl_model::prelude::*;

/// Status chosen at a round's phase-1 ack (the per-bit analogue of
/// [`TpStatus`](crate::two_phase::TpStatus)).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum BwStatus {
    /// The node saw only its own proposed bit this round.
    Decided(u8),
    /// The node saw both bit values proposed this round.
    Bivalent,
}

/// What a round-tagged message announces.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum BwKind {
    /// Phase-1 announcement: the sender proposes bit `r` of `candidate`.
    Phase1,
    /// Phase-2 announcement of the sender's status.
    Phase2(BwStatus),
}

/// A message of the bitwise protocol. Carries one id and the sender's
/// full candidate value (a value is payload data, not an id, so the
/// id budget stays 1, matching Algorithm 1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct BwMsg {
    /// Round (= bit index, most significant first) this message belongs to.
    pub round: u32,
    /// Sender id.
    pub id: NodeId,
    /// Sender's current candidate value.
    pub candidate: Value,
    /// Phase-1 proposal or phase-2 status.
    pub kind: BwKind,
}

impl Payload for BwMsg {
    fn id_count(&self) -> usize {
        1
    }
}

/// Where a node is within its current round.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RoundStage {
    Phase1,
    Phase2,
    AwaitWitnesses,
}

/// Per-round two-phase state (the Algorithm 1 machine, parameterized
/// by round).
#[derive(Clone, Debug)]
struct Round {
    stage: RoundStage,
    r1: BTreeSet<BwMsg>,
    r2: BTreeSet<BwMsg>,
    status: Option<BwStatus>,
    witnesses: BTreeSet<NodeId>,
}

impl Round {
    fn new() -> Self {
        Self {
            stage: RoundStage::Phase1,
            r1: BTreeSet::new(),
            r2: BTreeSet::new(),
            status: None,
            witnesses: BTreeSet::new(),
        }
    }

    fn insert(&mut self, msg: BwMsg) {
        match self.stage {
            RoundStage::Phase1 => {
                self.r1.insert(msg);
            }
            RoundStage::Phase2 | RoundStage::AwaitWitnesses => {
                self.r2.insert(msg);
            }
        }
    }

    fn saw_conflicting_evidence(&self, my_bit: u8) -> bool {
        self.r1.iter().any(|m| match m.kind {
            BwKind::Phase1 => bit_of(m.candidate, m.round) != my_bit,
            BwKind::Phase2(status) => status == BwStatus::Bivalent,
        })
    }

    fn have_phase2_from(&self, id: NodeId) -> bool {
        let check = |m: &BwMsg| m.id == id && matches!(m.kind, BwKind::Phase2(_));
        self.r1.iter().any(check) || self.r2.iter().any(check)
    }

    fn decided_zero(&self) -> Option<&BwMsg> {
        // Union scan (R_1 ∪ R_2), per the Theorem 4.1 proof — see the
        // pseudocode-discrepancy note in [`crate::two_phase`].
        self.r1
            .iter()
            .chain(self.r2.iter())
            .find(|m| matches!(m.kind, BwKind::Phase2(BwStatus::Decided(0))))
    }

    fn witnesses_complete(&self) -> bool {
        self.witnesses.iter().all(|&w| self.have_phase2_from(w))
    }
}

/// Returns the bit proposed in `round` of an MSB-aligned candidate
/// `v`: candidates are stored shifted left so that protocol round `r`
/// always examines absolute bit `63 - r`, independent of the width.
fn bit_of(v: Value, round: u32) -> u8 {
    debug_assert!(round < 64);
    ((v >> (63 - round)) & 1) as u8
}

/// Normalizes a candidate into the fixed 64-bit MSB-aligned frame the
/// round arithmetic uses: bit `r` of the *protocol* is bit `63 - r` of
/// the aligned word.
fn align(v: Value, bits: u32) -> Value {
    v << (64 - bits)
}

/// Undoes [`align`].
fn unalign(v: Value, bits: u32) -> Value {
    v >> (64 - bits)
}

/// One node of the bitwise multi-valued consensus protocol.
///
/// # Examples
///
/// ```
/// use amacl_core::multivalued::BitwiseTwoPhase;
/// use amacl_model::prelude::*;
///
/// let inputs: Vec<Value> = vec![9, 12, 9, 5];
/// let iv = inputs.clone();
/// let mut sim = SimBuilder::new(Topology::clique(4), |s| {
///     BitwiseTwoPhase::new(iv[s.index()], 4)
/// })
/// .scheduler(SynchronousScheduler::new(1))
/// .message_id_budget(1)
/// .build();
/// let report = sim.run();
/// assert!(report.all_decided());
/// let decided = report.agreement_value().unwrap();
/// assert!(inputs.contains(&decided));
/// ```
#[derive(Clone, Debug)]
pub struct BitwiseTwoPhase {
    bits: u32,
    input: Value,
    /// Current candidate, MSB-aligned (see [`align`]).
    candidate: Value,
    /// Every candidate value ever seen in a message (all are inputs),
    /// MSB-aligned.
    seen: BTreeSet<Value>,
    round: u32,
    state: Round,
    /// Messages for rounds this node has not entered yet.
    buffered: BTreeMap<u32, Vec<BwMsg>>,
    /// Set when the round's bit is decided but no prefix-matching
    /// candidate has arrived yet (see module docs); holds the decided
    /// bit while waiting.
    pending_adoption: Option<u8>,
    done: bool,
}

impl BitwiseTwoPhase {
    /// Creates a node with the given input, to be agreed on within
    /// `bits` bits. All nodes must use the same `bits`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or exceeds 64, or if `input` does not fit
    /// in `bits` bits.
    pub fn new(input: Value, bits: u32) -> Self {
        assert!(
            (1..=64).contains(&bits),
            "bit width must be in 1..=64, got {bits}"
        );
        assert!(
            bits == 64 || input < (1u64 << bits),
            "input {input} does not fit in {bits} bits"
        );
        let candidate = align(input, bits);
        let mut seen = BTreeSet::new();
        seen.insert(candidate);
        Self {
            bits,
            input,
            candidate,
            seen,
            round: 0,
            state: Round::new(),
            buffered: BTreeMap::new(),
            pending_adoption: None,
            done: false,
        }
    }

    /// The node's input value.
    pub fn input(&self) -> Value {
        self.input
    }

    /// The configured bit width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The round (bit index) the node is currently in; equals `bits`
    /// once done.
    pub fn round(&self) -> u32 {
        self.round
    }

    /// `true` once the node has decided.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The node's current candidate value (un-aligned).
    pub fn candidate(&self) -> Value {
        unalign(self.candidate, self.bits)
    }

    fn my_bit(&self) -> u8 {
        bit_of(self.candidate, self.round)
    }

    /// A candidate matches the agreed prefix through round `r` iff its
    /// top `r + 1` aligned bits equal the (agreed) top bits of
    /// `self.candidate` *after* the adoption step — during adoption we
    /// compare against an explicit prefix instead.
    fn matches_prefix(v: Value, prefix: Value, through_round: u32) -> bool {
        let shift = 63 - through_round;
        (v >> shift) == (prefix >> shift)
    }

    fn broadcast_phase1(&mut self, ctx: &mut Context<'_, BwMsg>) {
        let own = BwMsg {
            round: self.round,
            id: ctx.id(),
            candidate: self.candidate,
            kind: BwKind::Phase1,
        };
        self.state.r1.insert(own);
        let outcome = ctx.broadcast(own);
        debug_assert!(outcome.is_accepted(), "round start must find a free MAC");
    }

    /// Completes the current round with decided bit `b`, adopting a
    /// matching candidate and either deciding or starting the next
    /// round. If no matching candidate has arrived yet, parks in the
    /// pending-adoption state; [`Self::on_receive`] retries.
    fn finish_round(&mut self, b: u8, ctx: &mut Context<'_, BwMsg>) {
        // Build the agreed prefix: candidate already matches bits
        // 0..round; force bit `round` to b.
        let shift = 63 - self.round;
        let forced = (self.candidate & !(1u64 << shift)) | ((b as u64) << shift);
        if self.my_bit() != b {
            // Adopt the smallest seen candidate matching the agreed
            // prefix; park if none has arrived yet (module docs: one
            // is always in flight).
            match self
                .seen
                .iter()
                .copied()
                .find(|&v| Self::matches_prefix(v, forced, self.round))
            {
                Some(v) => self.candidate = v,
                None => {
                    self.pending_adoption = Some(b);
                    return;
                }
            }
        }
        self.pending_adoption = None;
        debug_assert!(Self::matches_prefix(self.candidate, forced, self.round));

        if self.round + 1 == self.bits {
            self.done = true;
            ctx.decide(unalign(self.candidate, self.bits));
            return;
        }

        self.round += 1;
        self.state = Round::new();
        self.broadcast_phase1(ctx);
        // Replay messages that arrived before we entered this round:
        // they all precede our phase-1 ack, so they land in R_1.
        if let Some(early) = self.buffered.remove(&self.round) {
            for m in early {
                self.state.r1.insert(m);
            }
        }
        // Receipt of buffered evidence never completes a round
        // immediately: the phase-1 ack has not arrived yet.
    }

    /// Runs the witness check; on success finishes the round.
    fn try_finish_await(&mut self, ctx: &mut Context<'_, BwMsg>) {
        debug_assert_eq!(self.state.stage, RoundStage::AwaitWitnesses);
        if self.state.witnesses_complete() {
            let b = if self.state.decided_zero().is_some() {
                0
            } else {
                1
            };
            self.finish_round(b, ctx);
        }
    }
}

impl Process for BitwiseTwoPhase {
    type Msg = BwMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, BwMsg>) {
        self.broadcast_phase1(ctx);
    }

    fn on_receive(&mut self, msg: BwMsg, ctx: &mut Context<'_, BwMsg>) {
        self.seen.insert(msg.candidate);
        if self.done {
            return;
        }
        if let Some(b) = self.pending_adoption {
            // The round's bit is already decided; we are only waiting
            // for a prefix-matching candidate to adopt. Buffer the
            // message first if it belongs to a future round, so the
            // replay on advancing does not lose it.
            if msg.round > self.round {
                self.buffered.entry(msg.round).or_default().push(msg);
            }
            self.finish_round(b, ctx);
            return;
        }
        if msg.round < self.round {
            // Stale round: that bit is already agreed.
            return;
        }
        if msg.round > self.round {
            self.buffered.entry(msg.round).or_default().push(msg);
            return;
        }
        self.state.insert(msg);
        if self.state.stage == RoundStage::AwaitWitnesses {
            self.try_finish_await(ctx);
        }
    }

    fn on_ack(&mut self, ctx: &mut Context<'_, BwMsg>) {
        if self.done || self.pending_adoption.is_some() {
            return;
        }
        match self.state.stage {
            RoundStage::Phase1 => {
                let status = if self.state.saw_conflicting_evidence(self.my_bit()) {
                    BwStatus::Bivalent
                } else {
                    BwStatus::Decided(self.my_bit())
                };
                self.state.status = Some(status);
                self.state.stage = RoundStage::Phase2;
                let own = BwMsg {
                    round: self.round,
                    id: ctx.id(),
                    candidate: self.candidate,
                    kind: BwKind::Phase2(status),
                };
                self.state.r2.insert(own);
                ctx.broadcast(own);
            }
            RoundStage::Phase2 => match self.state.status.expect("status set at phase-1 ack") {
                BwStatus::Decided(b) => {
                    self.finish_round(b, ctx);
                }
                BwStatus::Bivalent => {
                    self.state.witnesses = self
                        .state
                        .r1
                        .iter()
                        .chain(self.state.r2.iter())
                        .map(|m| m.id)
                        .collect();
                    self.state.stage = RoundStage::AwaitWitnesses;
                    self.try_finish_await(ctx);
                }
            },
            RoundStage::AwaitWitnesses => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_consensus;

    fn run(
        inputs: &[Value],
        bits: u32,
        scheduler: impl Scheduler + 'static,
    ) -> (RunReport, crate::verify::ConsensusCheck) {
        let iv = inputs.to_vec();
        let mut sim = SimBuilder::new(Topology::clique(inputs.len()), |s| {
            BitwiseTwoPhase::new(iv[s.index()], bits)
        })
        .scheduler(scheduler)
        .message_id_budget(1)
        .build();
        let report = sim.run();
        let check = check_consensus(inputs, &report, &[]);
        (report, check)
    }

    #[test]
    fn uniform_inputs_decide_that_value() {
        for v in [0u64, 5, 15] {
            let inputs = vec![v; 4];
            let (_, check) = run(&inputs, 4, SynchronousScheduler::new(1));
            check.assert_ok();
            assert_eq!(check.decided, Some(v));
        }
    }

    #[test]
    fn mixed_inputs_decide_some_input() {
        let inputs = vec![9, 12, 3, 9, 5];
        let (_, check) = run(&inputs, 4, SynchronousScheduler::new(2));
        check.assert_ok();
        assert!(inputs.contains(&check.decided.unwrap()));
    }

    #[test]
    fn validity_with_complementary_bit_patterns() {
        // The classic counterexample to naive per-bit agreement:
        // inputs 0b01 and 0b10 must not assemble 0b00 or 0b11.
        let inputs = vec![0b01, 0b10];
        let (_, check) = run(&inputs, 2, SynchronousScheduler::new(1));
        check.assert_ok();
        assert!(inputs.contains(&check.decided.unwrap()));
    }

    #[test]
    fn validity_under_random_adversaries() {
        for seed in 0..80 {
            let n = 2 + (seed as usize % 6);
            let inputs: Vec<Value> = (0..n).map(|i| (seed * 7 + i as u64 * 13) % 16).collect();
            let (_, check) = run(&inputs, 4, RandomScheduler::new(5, seed));
            assert!(check.ok(), "seed {seed}: {:?}", check.violation);
            assert!(
                inputs.contains(&check.decided.unwrap()),
                "seed {seed}: decided non-input {:?} from {inputs:?}",
                check.decided
            );
        }
    }

    #[test]
    fn decision_time_scales_linearly_in_bits() {
        // Under the synchronous scheduler each round costs exactly 2
        // ticks per F_ack=1, so B bits cost 2B.
        let f_ack = 1u64;
        let mut prev = 0;
        for bits in [1u32, 2, 4, 8] {
            let inputs = vec![0, (1 << bits) - 1, 1];
            let (report, check) = run(&inputs, bits, SynchronousScheduler::new(f_ack));
            check.assert_ok();
            let t = report.max_decision_time().unwrap().ticks();
            assert_eq!(t, 2 * bits as u64 * f_ack, "bits={bits}");
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn single_bit_matches_two_phase_semantics() {
        // B = 1 is exactly binary consensus.
        let inputs = vec![0, 1, 1];
        let (_, check) = run(&inputs, 1, SynchronousScheduler::new(1));
        check.assert_ok();
        assert!(check.decided == Some(0) || check.decided == Some(1));
    }

    #[test]
    fn works_without_knowledge_of_n() {
        // Constructor takes no n; a singleton decides its own value.
        let inputs = vec![42];
        let (_, check) = run(&inputs, 6, SynchronousScheduler::new(1));
        check.assert_ok();
        assert_eq!(check.decided, Some(42));
    }

    #[test]
    fn full_width_values_work() {
        let inputs = vec![u64::MAX, 0, u64::MAX - 1];
        let (_, check) = run(&inputs, 64, SynchronousScheduler::new(1));
        check.assert_ok();
        assert!(inputs.contains(&check.decided.unwrap()));
    }

    #[test]
    fn rounds_interleave_under_skewed_schedules() {
        // Stall one node's broadcasts to force multi-round skew; the
        // buffered-replay path must still preserve agreement.
        for seed in [3u64, 17, 99] {
            let inputs = vec![10, 5, 12, 3];
            let (_, check) = run(&inputs, 4, RandomScheduler::new(16, seed));
            assert!(check.ok(), "seed {seed}: {:?}", check.violation);
        }
    }

    #[test]
    fn candidate_tracking_is_observable() {
        let node = BitwiseTwoPhase::new(5, 4);
        assert_eq!(node.candidate(), 5);
        assert_eq!(node.input(), 5);
        assert_eq!(node.bits(), 4);
        assert_eq!(node.round(), 0);
        assert!(!node.is_done());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_input_rejected() {
        BitwiseTwoPhase::new(16, 4);
    }

    #[test]
    #[should_panic(expected = "bit width")]
    fn zero_width_rejected() {
        BitwiseTwoPhase::new(0, 0);
    }

    #[test]
    fn align_round_trip() {
        for bits in [1u32, 4, 63, 64] {
            let v = if bits == 64 {
                u64::MAX
            } else {
                (1 << bits) - 1
            };
            assert_eq!(unalign(align(v, bits), bits), v);
        }
    }
}
