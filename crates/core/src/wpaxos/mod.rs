//! wireless PAXOS (wPAXOS): optimal multihop consensus (Section 4.2).
//!
//! wPAXOS solves consensus in any connected multihop topology in
//! `O(D * F_ack)` time (Theorem 4.6), assuming unique ids and knowledge
//! of `n` — exactly the knowledge the paper's lower bounds prove
//! necessary. It combines classic Paxos proposer/acceptor logic with
//! four model-specific *support services* (paper Figure 3):
//!
//! * **Leader election** (Algorithm 2): floods the maximum id;
//!   eventually every node's `Ω` stabilizes to the same leader.
//! * **Change** (Algorithm 3): floods freshness timestamps so the
//!   eventual leader generates `Θ(1)` new proposals *after* the network
//!   stabilizes — late enough to benefit from stable routing, rare
//!   enough not to delay itself.
//! * **Tree building** (Algorithm 4): Bellman-Ford iterative refinement
//!   of shortest-path trees rooted at every potential leader, with
//!   leader-priority queueing so the eventual leader's tree completes
//!   `O(D * F_ack)` after election stabilizes.
//! * **Broadcast** (Algorithm 5): multiplexes one message from each
//!   service queue into each physical broadcast, respecting the model's
//!   one-outstanding-message discipline.
//!
//! Acceptor responses are routed *up the leader's tree* and
//! **aggregated**: multiple responses of the same type to the same
//! proposition collapse into a count (keeping only the
//! highest-numbered previous proposal among those merged). This is what
//! turns the naive `Θ(n * F_ack)` response-collection bottleneck into
//! `O(D * F_ack)` under the model's `O(1)`-ids-per-message limit.
//! Lemma 4.2 (never over-counting, even while trees are still
//! shifting) is enforced by construction and checked by tests.
//!
//! [`WpaxosConfig`] exposes the design choices as ablation flags
//! (aggregation, leader-priority queueing, tree routing) used by
//! experiment E8 and by the flooding baseline.

mod msgs;
mod node;
mod paxos;
mod services;

pub use msgs::{AcceptorMsg, ChangeMsg, ProposalNum, ProposerMsg, RespKind, SearchMsg, WMsg};
pub use node::{WpaxosNode, WpaxosStats};
pub use paxos::{Acceptor, PPhase, Proposer, ProposerAction};
pub use services::{AcceptorQueue, ChangeService, LeaderService, ProposerFlood, TreeService};

use amacl_model::prelude::Value;

/// Configuration for a [`WpaxosNode`].
#[derive(Clone, Copy, Debug)]
pub struct WpaxosConfig {
    /// Network size `n`: required knowledge (Theorem 3.9). Only "good
    /// enough knowledge of `n` to recognize a majority" is actually
    /// used.
    pub n: usize,
    /// Aggregate acceptor responses in queues (paper default: on).
    /// Ablation E8 turns this off.
    pub aggregate: bool,
    /// Move the current leader's search message to the front of the
    /// tree queue (paper default: on). Ablation E8 turns this off.
    pub leader_priority: bool,
    /// Route acceptor responses up the leader's shortest-path tree
    /// (paper default: on). Turned off, responses are flooded network
    /// wide — the `Theta(n * F_ack)` baseline of Section 4.2's
    /// introduction.
    pub route_via_tree: bool,
    /// Restrict the change service's `OnChange` trigger to updates that
    /// affect the *leader's* tree (`Ω` changes, or `dist[Ω]` improves)
    /// instead of the paper's literal "`Ω` or `dist` updated"
    /// (Algorithm 3).
    ///
    /// **Reproduction finding (experiment E8):** with the literal
    /// trigger, background Bellman-Ford churn for all `n` tree roots
    /// keeps generating changes — and thus fresh proposals — until all
    /// trees quiesce, adding an additive `Θ(n * F_ack)` term that is
    /// visible on small-diameter topologies. Lemma 4.5's `O(D * F_ack)`
    /// argument implicitly needs changes to stop by `O(D * F_ack)`;
    /// scoping the trigger to the leader's tree (which is all the
    /// proof actually uses) restores the claimed bound without
    /// affecting safety or liveness.
    pub leader_scoped_changes: bool,
}

impl WpaxosConfig {
    /// The paper's configuration for a network of size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "network size must be positive");
        Self {
            n,
            aggregate: true,
            leader_priority: true,
            route_via_tree: true,
            leader_scoped_changes: false,
        }
    }

    /// Enables the leader-scoped change trigger (see the field docs;
    /// restores the `O(D * F_ack)` bound on small-diameter networks).
    pub fn with_leader_scoped_changes(mut self) -> Self {
        self.leader_scoped_changes = true;
        self
    }

    /// Disables response aggregation (ablation).
    pub fn without_aggregation(mut self) -> Self {
        self.aggregate = false;
        self
    }

    /// Disables leader-priority tree queueing (ablation).
    pub fn without_leader_priority(mut self) -> Self {
        self.leader_priority = false;
        self
    }

    /// Disables tree routing: responses are flooded instead (the
    /// baseline configuration; implies no aggregation).
    pub fn flooded_responses(mut self) -> Self {
        self.route_via_tree = false;
        self.aggregate = false;
        self
    }

    /// The majority threshold `floor(n/2) + 1`.
    pub fn majority(&self) -> u64 {
        (self.n as u64) / 2 + 1
    }
}

/// Convenience constructor for one wPAXOS node with the paper's
/// default configuration.
pub fn wpaxos_node(input: Value, n: usize) -> WpaxosNode {
    WpaxosNode::new(input, WpaxosConfig::new(n))
}

#[cfg(test)]
mod config_tests {
    use super::*;

    #[test]
    fn majority_thresholds() {
        assert_eq!(WpaxosConfig::new(1).majority(), 1);
        assert_eq!(WpaxosConfig::new(2).majority(), 2);
        assert_eq!(WpaxosConfig::new(3).majority(), 2);
        assert_eq!(WpaxosConfig::new(4).majority(), 3);
        assert_eq!(WpaxosConfig::new(5).majority(), 3);
    }

    #[test]
    fn ablation_builders() {
        let c = WpaxosConfig::new(5).without_aggregation();
        assert!(!c.aggregate && c.route_via_tree);
        let f = WpaxosConfig::new(5).flooded_responses();
        assert!(!f.route_via_tree && !f.aggregate);
        let lp = WpaxosConfig::new(5).without_leader_priority();
        assert!(!lp.leader_priority && lp.aggregate);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_n_rejected() {
        WpaxosConfig::new(0);
    }
}
