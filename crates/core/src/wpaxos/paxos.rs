//! The Paxos proposer and acceptor state machines used by wPAXOS.
//!
//! These implement the "high-level PAXOS logic" the paper plugs into
//! its support services (Section 4.2.1): single-decree Paxos with the
//! standard rejection-hint optimization, restricted so that a proposer
//! attempts at most **two** proposal numbers per change-service
//! notification — the property Lemma 4.4 uses to bound proposal tags
//! polynomially and Lemma 4.5 uses for the `Θ(1)`-proposals-after-GST
//! argument.

use amacl_model::ids::NodeId;
use amacl_model::proc::Value;

use super::msgs::{ProposalNum, ProposerMsg, RespKind};

/// A single acceptor response (pre-aggregation).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Response {
    /// Which proposition this answers.
    pub about: ProposalNum,
    /// Response type.
    pub kind: RespKind,
    /// Previously accepted proposal (for `PrepareAck`).
    pub prev: Option<(ProposalNum, Value)>,
    /// Largest committed proposal number (for nacks).
    pub hint: Option<ProposalNum>,
}

/// Paxos acceptor state.
///
/// Each distinct proposition (proposal number × message type) is
/// answered at most once, so re-flooded copies of the same prepare or
/// propose never inflate response counts.
#[derive(Clone, Debug, Default)]
pub struct Acceptor {
    promised: Option<ProposalNum>,
    accepted: Option<(ProposalNum, Value)>,
    answered: std::collections::BTreeSet<(u64, u64, u8)>,
}

impl Acceptor {
    /// Creates a fresh acceptor.
    pub fn new() -> Self {
        Self::default()
    }

    /// The highest proposal number promised so far.
    pub fn promised(&self) -> Option<ProposalNum> {
        self.promised
    }

    /// The last accepted proposal, if any.
    pub fn accepted(&self) -> Option<(ProposalNum, Value)> {
        self.accepted
    }

    /// Processes a prepare/propose; returns the response, or `None`
    /// for a duplicate (already answered) or a `Decide` message.
    pub fn handle(&mut self, msg: &ProposerMsg) -> Option<Response> {
        let (pn, rank) = msg.key()?;
        if !self.answered.insert((pn.tag, pn.id.raw(), rank)) {
            return None;
        }
        match *msg {
            ProposerMsg::Prepare { pn } => {
                if self.promised.is_none_or(|p| pn > p) {
                    self.promised = Some(pn);
                    Some(Response {
                        about: pn,
                        kind: RespKind::PrepareAck,
                        prev: self.accepted,
                        hint: None,
                    })
                } else {
                    Some(Response {
                        about: pn,
                        kind: RespKind::PrepareNack,
                        prev: None,
                        hint: self.promised,
                    })
                }
            }
            ProposerMsg::Propose { pn, value } => {
                if self.promised.is_none_or(|p| pn >= p) {
                    self.promised = Some(pn);
                    self.accepted = Some((pn, value));
                    Some(Response {
                        about: pn,
                        kind: RespKind::ProposeAck,
                        prev: None,
                        hint: None,
                    })
                } else {
                    Some(Response {
                        about: pn,
                        kind: RespKind::ProposeNack,
                        prev: None,
                        hint: self.promised,
                    })
                }
            }
            ProposerMsg::Decide { .. } => None,
        }
    }
}

/// Proposer phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PPhase {
    /// Not currently running a proposal (waiting for the change
    /// service).
    Idle,
    /// Waiting for prepare responses.
    Preparing,
    /// Waiting for propose responses.
    Proposing,
}

/// What the caller must do after feeding the proposer an event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProposerAction {
    /// Nothing to do.
    None,
    /// Flood this proposer message.
    Emit(ProposerMsg),
    /// A majority accepted: decide this value.
    Decide(Value),
}

/// Paxos proposer state.
#[derive(Clone, Debug)]
pub struct Proposer {
    initial: Value,
    n: u64,
    majority: u64,
    phase: PPhase,
    pn: ProposalNum,
    value: Value,
    ack_count: u64,
    nack_count: u64,
    best_prev: Option<(ProposalNum, Value)>,
    attempts_left: u32,
    max_tag_seen: u64,
    proposals_started: u64,
}

impl Proposer {
    /// Creates a proposer with the node's initial consensus value and
    /// the known network size.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(initial: Value, n: u64) -> Self {
        assert!(n > 0);
        Self {
            initial,
            n,
            majority: n / 2 + 1,
            phase: PPhase::Idle,
            pn: ProposalNum::new(0, NodeId(0)),
            value: initial,
            ack_count: 0,
            nack_count: 0,
            best_prev: None,
            attempts_left: 0,
            max_tag_seen: 0,
            proposals_started: 0,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> PPhase {
        self.phase
    }

    /// Current proposal number (meaningful while not idle).
    pub fn current_pn(&self) -> ProposalNum {
        self.pn
    }

    /// Number of proposals this node has started (Lemma 4.4 / E8
    /// instrumentation).
    pub fn proposals_started(&self) -> u64 {
        self.proposals_started
    }

    /// Largest proposal tag observed anywhere (Lemma 4.4
    /// instrumentation).
    pub fn max_tag_seen(&self) -> u64 {
        self.max_tag_seen
    }

    /// Notes a proposal number observed in the network (flooded
    /// proposer traffic, hints, previous proposals).
    pub fn observe_pn(&mut self, pn: ProposalNum) {
        self.max_tag_seen = self.max_tag_seen.max(pn.tag);
    }

    /// Change-service notification (`GenerateNewPAXOSProposal`): grants
    /// a budget of two proposal numbers and starts a prepare.
    pub fn on_change(&mut self, me: NodeId) -> ProposerAction {
        self.attempts_left = 2;
        self.start_prepare(me)
    }

    fn start_prepare(&mut self, me: NodeId) -> ProposerAction {
        debug_assert!(self.attempts_left > 0);
        self.attempts_left -= 1;
        self.max_tag_seen += 1;
        self.pn = ProposalNum::new(self.max_tag_seen, me);
        self.phase = PPhase::Preparing;
        self.ack_count = 0;
        self.nack_count = 0;
        self.best_prev = None;
        self.proposals_started += 1;
        ProposerAction::Emit(ProposerMsg::Prepare { pn: self.pn })
    }

    /// The number of rejections that makes an affirmative majority
    /// unreachable (every acceptor answers each proposition exactly
    /// once, so `n - nacks < majority` means give up).
    fn nack_threshold(&self) -> u64 {
        self.n - self.majority + 1
    }

    /// Feeds an (aggregated) response addressed to this proposer.
    ///
    /// `still_leader` gates the retry: a deposed proposer goes idle on
    /// failure instead of escalating its proposal number.
    #[allow(clippy::too_many_arguments)]
    pub fn on_response(
        &mut self,
        about: ProposalNum,
        kind: RespKind,
        count: u64,
        prev: Option<(ProposalNum, Value)>,
        hint: Option<ProposalNum>,
        me: NodeId,
        still_leader: bool,
    ) -> ProposerAction {
        if let Some(h) = hint {
            self.observe_pn(h);
        }
        if let Some((p, _)) = prev {
            self.observe_pn(p);
        }
        if about != self.pn {
            return ProposerAction::None; // stale response
        }
        match (self.phase, kind) {
            (PPhase::Preparing, RespKind::PrepareAck) => {
                self.ack_count += count;
                self.best_prev = match (self.best_prev, prev) {
                    (Some(a), Some(b)) => Some(if a.0 >= b.0 { a } else { b }),
                    (a, b) => a.or(b),
                };
                if self.ack_count >= self.majority {
                    self.phase = PPhase::Proposing;
                    self.value = self.best_prev.map_or(self.initial, |(_, v)| v);
                    self.ack_count = 0;
                    self.nack_count = 0;
                    ProposerAction::Emit(ProposerMsg::Propose {
                        pn: self.pn,
                        value: self.value,
                    })
                } else {
                    ProposerAction::None
                }
            }
            (PPhase::Preparing, RespKind::PrepareNack)
            | (PPhase::Proposing, RespKind::ProposeNack) => {
                self.nack_count += count;
                if self.nack_count >= self.nack_threshold() {
                    if self.attempts_left > 0 && still_leader {
                        self.start_prepare(me)
                    } else {
                        self.phase = PPhase::Idle;
                        ProposerAction::None
                    }
                } else {
                    ProposerAction::None
                }
            }
            (PPhase::Proposing, RespKind::ProposeAck) => {
                self.ack_count += count;
                if self.ack_count >= self.majority {
                    self.phase = PPhase::Idle;
                    ProposerAction::Decide(self.value)
                } else {
                    ProposerAction::None
                }
            }
            // Late responses from a superseded phase.
            _ => ProposerAction::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ME: NodeId = NodeId(9);

    fn prepare_pn(p: &Proposer) -> ProposalNum {
        assert_eq!(p.phase(), PPhase::Preparing);
        p.current_pn()
    }

    #[test]
    fn acceptor_promises_and_accepts_in_order() {
        let mut a = Acceptor::new();
        let p1 = ProposalNum::new(1, NodeId(1));
        let p2 = ProposalNum::new(2, NodeId(2));

        let r = a.handle(&ProposerMsg::Prepare { pn: p1 }).unwrap();
        assert_eq!(r.kind, RespKind::PrepareAck);
        assert_eq!(r.prev, None);

        // A higher prepare also gets a promise.
        let r = a.handle(&ProposerMsg::Prepare { pn: p2 }).unwrap();
        assert_eq!(r.kind, RespKind::PrepareAck);

        // The superseded propose is rejected with a hint.
        let r = a
            .handle(&ProposerMsg::Propose { pn: p1, value: 0 })
            .unwrap();
        assert_eq!(r.kind, RespKind::ProposeNack);
        assert_eq!(r.hint, Some(p2));

        // The current propose is accepted.
        let r = a
            .handle(&ProposerMsg::Propose { pn: p2, value: 1 })
            .unwrap();
        assert_eq!(r.kind, RespKind::ProposeAck);
        assert_eq!(a.accepted(), Some((p2, 1)));

        // A later prepare ack reports the accepted proposal.
        let p3 = ProposalNum::new(3, NodeId(1));
        let r = a.handle(&ProposerMsg::Prepare { pn: p3 }).unwrap();
        assert_eq!(r.kind, RespKind::PrepareAck);
        assert_eq!(r.prev, Some((p2, 1)));
    }

    #[test]
    fn acceptor_answers_each_proposition_once() {
        let mut a = Acceptor::new();
        let pn = ProposalNum::new(1, NodeId(1));
        assert!(a.handle(&ProposerMsg::Prepare { pn }).is_some());
        assert!(a.handle(&ProposerMsg::Prepare { pn }).is_none());
        assert!(a.handle(&ProposerMsg::Propose { pn, value: 0 }).is_some());
        assert!(a.handle(&ProposerMsg::Propose { pn, value: 0 }).is_none());
        assert!(a.handle(&ProposerMsg::Decide { value: 0 }).is_none());
    }

    #[test]
    fn acceptor_rejects_stale_prepare_with_hint() {
        let mut a = Acceptor::new();
        let low = ProposalNum::new(1, NodeId(1));
        let high = ProposalNum::new(5, NodeId(2));
        a.handle(&ProposerMsg::Prepare { pn: high });
        let r = a.handle(&ProposerMsg::Prepare { pn: low }).unwrap();
        assert_eq!(r.kind, RespKind::PrepareNack);
        assert_eq!(r.hint, Some(high));
    }

    #[test]
    fn proposer_happy_path_decides_own_value() {
        // n = 5, majority 3.
        let mut p = Proposer::new(7, 5);
        assert_eq!(p.phase(), PPhase::Idle);
        let act = p.on_change(ME);
        let pn = prepare_pn(&p);
        assert_eq!(act, ProposerAction::Emit(ProposerMsg::Prepare { pn }));

        assert_eq!(
            p.on_response(pn, RespKind::PrepareAck, 2, None, None, ME, true),
            ProposerAction::None
        );
        let act = p.on_response(pn, RespKind::PrepareAck, 1, None, None, ME, true);
        assert_eq!(
            act,
            ProposerAction::Emit(ProposerMsg::Propose { pn, value: 7 })
        );

        assert_eq!(
            p.on_response(pn, RespKind::ProposeAck, 3, None, None, ME, true),
            ProposerAction::Decide(7)
        );
        assert_eq!(p.proposals_started(), 1);
    }

    #[test]
    fn proposer_adopts_highest_previous_value() {
        let mut p = Proposer::new(0, 3);
        p.on_change(ME);
        let pn = prepare_pn(&p);
        let old_small = ProposalNum::new(1, NodeId(1));
        let old_big = ProposalNum::new(2, NodeId(2));
        p.on_response(
            pn,
            RespKind::PrepareAck,
            1,
            Some((old_small, 5)),
            None,
            ME,
            true,
        );
        let act = p.on_response(
            pn,
            RespKind::PrepareAck,
            1,
            Some((old_big, 9)),
            None,
            ME,
            true,
        );
        assert_eq!(
            act,
            ProposerAction::Emit(ProposerMsg::Propose { pn, value: 9 })
        );
    }

    #[test]
    fn proposer_retries_once_with_higher_tag_after_nack_majority() {
        let mut p = Proposer::new(0, 4); // majority 3, nack threshold 2
        p.on_change(ME);
        let pn1 = prepare_pn(&p);
        let committed = ProposalNum::new(10, NodeId(2));
        let act = p.on_response(
            pn1,
            RespKind::PrepareNack,
            2,
            None,
            Some(committed),
            ME,
            true,
        );
        // Retry with a tag above the hint.
        match act {
            ProposerAction::Emit(ProposerMsg::Prepare { pn: pn2 }) => {
                assert!(pn2.tag > committed.tag);
                assert!(pn2 > pn1);
            }
            other => panic!("expected retry prepare, got {other:?}"),
        }
        assert_eq!(p.proposals_started(), 2);

        // A second nack majority exhausts the budget: idle until the
        // next change notification.
        let pn2 = p.current_pn();
        let act = p.on_response(pn2, RespKind::PrepareNack, 2, None, None, ME, true);
        assert_eq!(act, ProposerAction::None);
        assert_eq!(p.phase(), PPhase::Idle);
    }

    #[test]
    fn deposed_proposer_goes_idle_instead_of_retrying() {
        let mut p = Proposer::new(0, 3); // nack threshold 2
        p.on_change(ME);
        let pn = prepare_pn(&p);
        let act = p.on_response(pn, RespKind::PrepareNack, 2, None, None, ME, false);
        assert_eq!(act, ProposerAction::None);
        assert_eq!(p.phase(), PPhase::Idle);
    }

    #[test]
    fn stale_and_mismatched_responses_ignored() {
        let mut p = Proposer::new(0, 3);
        p.on_change(ME);
        let pn = prepare_pn(&p);
        let other = ProposalNum::new(99, NodeId(1));
        assert_eq!(
            p.on_response(other, RespKind::PrepareAck, 2, None, None, ME, true),
            ProposerAction::None
        );
        // Propose-phase responses during prepare are ignored.
        assert_eq!(
            p.on_response(pn, RespKind::ProposeAck, 2, None, None, ME, true),
            ProposerAction::None
        );
        // But the hint still advanced max_tag_seen.
        assert!(p.max_tag_seen() >= 1);
    }

    #[test]
    fn singleton_network_decides_immediately_via_self_responses() {
        let mut p = Proposer::new(4, 1); // majority 1
        let act = p.on_change(ME);
        let pn = prepare_pn(&p);
        assert_eq!(act, ProposerAction::Emit(ProposerMsg::Prepare { pn }));
        let act = p.on_response(pn, RespKind::PrepareAck, 1, None, None, ME, true);
        assert_eq!(
            act,
            ProposerAction::Emit(ProposerMsg::Propose { pn, value: 4 })
        );
        let act = p.on_response(pn, RespKind::ProposeAck, 1, None, None, ME, true);
        assert_eq!(act, ProposerAction::Decide(4));
    }

    #[test]
    fn observe_pn_raises_next_tag() {
        let mut p = Proposer::new(0, 3);
        p.observe_pn(ProposalNum::new(41, NodeId(5)));
        p.on_change(ME);
        assert_eq!(p.current_pn().tag, 42);
    }
}
