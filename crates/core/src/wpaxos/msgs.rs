//! wPAXOS message types.
//!
//! Every physical broadcast carries one [`WMsg`]: the broadcast service
//! (Algorithm 5) packs at most one message from each service queue into
//! it. Each component is `O(1)` ids, so the whole message respects the
//! model's constant-ids-per-message restriction regardless of `n` —
//! the property that makes response aggregation necessary in the first
//! place.

use amacl_model::ids::NodeId;
use amacl_model::msg::Payload;
use amacl_model::proc::Value;
use amacl_model::sim::time::Timestamp;

/// A Paxos proposal number: a `(tag, id)` pair compared
/// lexicographically (Section 4.2.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProposalNum {
    /// Monotone counter component.
    pub tag: u64,
    /// Proposer id (ties broken by id).
    pub id: NodeId,
}

impl ProposalNum {
    /// Creates a proposal number.
    pub fn new(tag: u64, id: NodeId) -> Self {
        Self { tag, id }
    }
}

/// Flooded proposer-role messages.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProposerMsg {
    /// Paxos phase-1 request: ask acceptors to promise.
    Prepare {
        /// The proposal number being prepared.
        pn: ProposalNum,
    },
    /// Paxos phase-2 request (the paper also calls it *accept*).
    Propose {
        /// The proposal number.
        pn: ProposalNum,
        /// The proposed value.
        value: Value,
    },
    /// A decision announcement, flooded once the proposer counts a
    /// majority of accepts.
    Decide {
        /// The decided value.
        value: Value,
    },
}

impl ProposerMsg {
    /// The proposal number, if this is a prepare/propose.
    pub fn pn(&self) -> Option<ProposalNum> {
        match *self {
            ProposerMsg::Prepare { pn } | ProposerMsg::Propose { pn, .. } => Some(pn),
            ProposerMsg::Decide { .. } => None,
        }
    }

    /// Ordering rank within one proposal number: a `Propose` supersedes
    /// the `Prepare` it followed.
    pub fn rank(&self) -> u8 {
        match self {
            ProposerMsg::Prepare { .. } => 0,
            ProposerMsg::Propose { .. } => 1,
            ProposerMsg::Decide { .. } => 2,
        }
    }

    /// Flood-dedup key: `(pn, rank)`.
    pub fn key(&self) -> Option<(ProposalNum, u8)> {
        self.pn().map(|pn| (pn, self.rank()))
    }
}

/// The four acceptor-response types.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RespKind {
    /// Promise in response to a prepare.
    PrepareAck,
    /// Rejection of a prepare (already promised higher).
    PrepareNack,
    /// Acceptance of a propose.
    ProposeAck,
    /// Rejection of a propose.
    ProposeNack,
}

impl RespKind {
    /// `true` for the two affirmative kinds (the ones Lemma 4.2
    /// counts).
    pub fn is_affirmative(self) -> bool {
        matches!(self, RespKind::PrepareAck | RespKind::ProposeAck)
    }
}

/// An (optionally aggregated) acceptor response in transit toward its
/// proposer.
///
/// In tree-routing mode the response travels hop by hop: `dest` names
/// the next hop (`parent[about.id]` at the sender), and every relay
/// re-addresses it. Counts of like responses merge along the way; the
/// highest-numbered previous proposal and commitment hint survive the
/// merge (Section 4.2.1, "Acceptors").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AcceptorMsg {
    /// Next hop (tree mode). Nodes other than `dest` ignore the
    /// message. In flood mode this is the proposer id and is unused.
    pub dest: NodeId,
    /// The proposition being answered.
    pub about: ProposalNum,
    /// Response type.
    pub kind: RespKind,
    /// Number of acceptor responses aggregated into this message.
    pub count: u64,
    /// For `PrepareAck`: the highest-numbered previously-accepted
    /// proposal among the aggregated responders.
    pub prev: Option<(ProposalNum, Value)>,
    /// For nacks: the largest proposal number a rejecting acceptor had
    /// committed to (the standard rejection-hint optimization).
    pub hint: Option<ProposalNum>,
    /// Originating acceptor, set only in flood mode (needed for
    /// network-wide dedup when responses are not aggregated).
    pub origin: Option<NodeId>,
}

/// One step of the tree-building service (Algorithm 4): "a tree rooted
/// at `root` can be reached through me in `hops` hops".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SearchMsg {
    /// Tree root.
    pub root: NodeId,
    /// Hop count offered to receivers.
    pub hops: u32,
}

/// One step of the change service (Algorithm 3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChangeMsg {
    /// Freshness timestamp of the change.
    pub ts: Timestamp,
    /// Node that observed the change.
    pub id: NodeId,
}

/// The multiplexed per-broadcast message (Algorithm 5).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WMsg {
    /// Sending node (the tree service stores it as the parent
    /// candidate, per Algorithm 4's `m.sender`).
    pub sender: Option<NodeId>,
    /// Leader-election payload.
    pub leader: Option<NodeId>,
    /// Change-service payload.
    pub change: Option<ChangeMsg>,
    /// Tree-building payload.
    pub search: Option<SearchMsg>,
    /// Proposer-role payload.
    pub proposer: Option<ProposerMsg>,
    /// Acceptor-response payload.
    pub acceptor: Option<AcceptorMsg>,
}

impl WMsg {
    /// `true` when no service contributed anything (such a message is
    /// never broadcast).
    pub fn is_empty(&self) -> bool {
        self.leader.is_none()
            && self.change.is_none()
            && self.search.is_none()
            && self.proposer.is_none()
            && self.acceptor.is_none()
    }
}

impl Payload for WMsg {
    fn id_count(&self) -> usize {
        let mut ids = usize::from(self.sender.is_some());
        ids += usize::from(self.leader.is_some());
        ids += usize::from(self.change.is_some());
        ids += usize::from(self.search.is_some());
        ids += match self.proposer {
            Some(ProposerMsg::Prepare { .. }) | Some(ProposerMsg::Propose { .. }) => 1,
            Some(ProposerMsg::Decide { .. }) | None => 0,
        };
        if let Some(a) = &self.acceptor {
            ids += 2; // dest + about.id
            ids += usize::from(a.prev.is_some());
            ids += usize::from(a.hint.is_some());
            ids += usize::from(a.origin.is_some());
        }
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amacl_model::sim::time::Time;

    #[test]
    fn proposal_numbers_order_lexicographically() {
        let a = ProposalNum::new(1, NodeId(9));
        let b = ProposalNum::new(2, NodeId(0));
        let c = ProposalNum::new(2, NodeId(3));
        assert!(a < b && b < c);
    }

    #[test]
    fn proposer_msg_keys() {
        let pn = ProposalNum::new(3, NodeId(1));
        assert_eq!(ProposerMsg::Prepare { pn }.key(), Some((pn, 0)));
        assert_eq!(ProposerMsg::Propose { pn, value: 1 }.key(), Some((pn, 1)));
        assert_eq!(ProposerMsg::Decide { value: 1 }.key(), None);
        assert!(RespKind::PrepareAck.is_affirmative());
        assert!(!RespKind::ProposeNack.is_affirmative());
    }

    #[test]
    fn id_count_is_bounded_constant() {
        // Worst case: every slot filled, acceptor msg with all options.
        let pn = ProposalNum::new(7, NodeId(2));
        let m = WMsg {
            sender: Some(NodeId(0)),
            leader: Some(NodeId(1)),
            change: Some(ChangeMsg {
                ts: Timestamp {
                    time: Time(1),
                    node: 0,
                    seq: 0,
                },
                id: NodeId(3),
            }),
            search: Some(SearchMsg {
                root: NodeId(4),
                hops: 2,
            }),
            proposer: Some(ProposerMsg::Propose { pn, value: 1 }),
            acceptor: Some(AcceptorMsg {
                dest: NodeId(5),
                about: pn,
                kind: RespKind::PrepareAck,
                count: 40,
                prev: Some((pn, 0)),
                hint: Some(pn),
                origin: Some(NodeId(6)),
            }),
        };
        assert_eq!(m.id_count(), 1 + 1 + 1 + 1 + 1 + 5);
        assert!(m.id_count() <= 10, "constant bound independent of count=40");
        assert!(!m.is_empty());
    }

    #[test]
    fn empty_message_detected() {
        let m = WMsg {
            sender: Some(NodeId(0)),
            ..WMsg::default()
        };
        assert!(m.is_empty(), "sender alone carries no payload");
        assert_eq!(WMsg::default().id_count(), 0);
    }
}
