//! The assembled wPAXOS node: Paxos logic wired to the support
//! services through the broadcast multiplexer (Algorithm 5).

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use amacl_model::ids::NodeId;
use amacl_model::prelude::*;

use super::msgs::{AcceptorMsg, ProposalNum, ProposerMsg, RespKind, WMsg};
use super::paxos::{Acceptor, Proposer, ProposerAction, Response};
use super::services::{AcceptorQueue, ChangeService, LeaderService, ProposerFlood, TreeService};
use super::WpaxosConfig;

/// Instrumentation counters exposed for the analysis experiments
/// (Lemma 4.2's count invariant, Lemma 4.4's tag bound, and the E8
/// ablations).
#[derive(Clone, Debug, Default)]
pub struct WpaxosStats {
    /// Change-service notifications that ran `UpdateQ` (local changes
    /// plus accepted remote announcements).
    pub change_updates: u64,
    /// Affirmative responses *generated* by this node's acceptor, per
    /// proposition — the `a(p)` side of Lemma 4.2.
    pub affirmative_generated: BTreeMap<(ProposalNum, RespKind), u64>,
    /// Responses *counted* by this node's proposer, per proposition —
    /// the `c(p)` side of Lemma 4.2.
    pub responses_counted: BTreeMap<(ProposalNum, RespKind), u64>,
    /// Responses dropped because no parent toward the proposer was
    /// known yet (only possible before the tree stabilizes; safety is
    /// unaffected, per Lemma 4.2).
    pub responses_dropped_no_parent: u64,
}

/// One wPAXOS node. Construct with [`WpaxosNode::new`] or the
/// [`wpaxos_node`](super::wpaxos_node) helper, then run it in a
/// [`Sim`](amacl_model::sim::engine::Sim).
#[derive(Clone, Debug)]
pub struct WpaxosNode {
    input: Value,
    cfg: WpaxosConfig,
    inner: Option<Inner>,
    stats: WpaxosStats,
    /// Reusable fixed-point work stack for
    /// [`Self::process_proposer_msg`] — empty between messages, kept
    /// for its capacity so the per-delivery hot path never allocates.
    work_stack: Vec<ProposerMsg>,
}

/// State that exists only once the node knows its own id (assigned by
/// the MAC layer at start).
#[derive(Clone, Debug)]
struct Inner {
    me: NodeId,
    leader: LeaderService,
    change: ChangeService,
    tree: TreeService,
    pflood: ProposerFlood,
    aqueue: AcceptorQueue,
    acceptor: Acceptor,
    proposer: Proposer,
    decided: Option<Value>,
    /// Largest proposal number observed from the current leader; the
    /// acceptor queue is pruned to it (the paper's queue invariant).
    best_leader_pn: Option<ProposalNum>,
    /// Flood-mode dedup of relayed responses by (origin, proposition,
    /// kind).
    flood_seen: BTreeSet<(u64, u64, u64, RespKind)>,
}

impl WpaxosNode {
    /// Creates a node with the given input value and configuration.
    pub fn new(input: Value, cfg: WpaxosConfig) -> Self {
        Self {
            input,
            cfg,
            inner: None,
            stats: WpaxosStats::default(),
            work_stack: Vec::new(),
        }
    }

    /// Instrumentation counters.
    pub fn stats(&self) -> &WpaxosStats {
        &self.stats
    }

    /// Current leader estimate `Ω`, once started.
    pub fn omega(&self) -> Option<NodeId> {
        self.inner.as_ref().map(|i| i.leader.omega())
    }

    /// The value this node has decided, if any.
    pub fn decided_value(&self) -> Option<Value> {
        self.inner.as_ref().and_then(|i| i.decided)
    }

    /// Number of Paxos proposals this node has started.
    pub fn proposals_started(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.proposer.proposals_started())
    }

    /// Largest proposal tag observed (Lemma 4.4 instrumentation).
    pub fn max_tag_seen(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.proposer.max_tag_seen())
    }

    /// Best-known hop distance to `root`'s tree, once started.
    pub fn dist_to(&self, root: NodeId) -> Option<u32> {
        self.inner.as_ref().and_then(|i| i.tree.dist_of(root))
    }

    /// Current parent toward `root`, once started.
    pub fn parent_of(&self, root: NodeId) -> Option<NodeId> {
        self.inner.as_ref().and_then(|i| i.tree.parent_of(root))
    }

    fn inner(&mut self) -> &mut Inner {
        self.inner.as_mut().expect("node started")
    }

    /// Records a local change (`Ω` or a `dist` entry updated): bumps
    /// the change service and, when this node believes itself leader,
    /// generates a new proposal (Algorithm 3's `UpdateQ`).
    fn local_change(&mut self, ctx: &mut Context<'_, WMsg>) {
        let ts = ctx.timestamp();
        let me = self.inner().me;
        self.inner().change.local_change(ts, me);
        self.stats.change_updates += 1;
        self.maybe_generate(ctx);
    }

    /// `GenerateNewPAXOSProposal` gate: only the self-believed leader,
    /// and only before deciding.
    fn maybe_generate(&mut self, ctx: &mut Context<'_, WMsg>) {
        let inner = self.inner();
        if inner.decided.is_some() || inner.leader.omega() != inner.me {
            return;
        }
        let me = inner.me;
        let action = inner.proposer.on_change(me);
        self.handle_action(action, ctx);
    }

    fn handle_action(&mut self, action: ProposerAction, ctx: &mut Context<'_, WMsg>) {
        match action {
            ProposerAction::None => {}
            ProposerAction::Emit(m) => self.process_proposer_msg(m, ctx),
            ProposerAction::Decide(v) => self.adopt_decision(v, ctx),
        }
    }

    fn adopt_decision(&mut self, value: Value, ctx: &mut Context<'_, WMsg>) {
        let inner = self.inner();
        if inner.decided.is_none() {
            inner.decided = Some(value);
            ctx.decide(value);
        }
    }

    /// Tracks the largest proposal number seen from the current leader
    /// and prunes stale queued responses (the paper's acceptor-queue
    /// invariant).
    fn note_pn(&mut self, pn: ProposalNum) {
        let inner = self.inner();
        inner.proposer.observe_pn(pn);
        if pn.id == inner.leader.omega() && inner.best_leader_pn.is_none_or(|b| pn > b) {
            inner.best_leader_pn = Some(pn);
            inner.aqueue.prune_except(pn);
        }
    }

    /// Processes a prepare/propose/decide, whether received from the
    /// network or emitted by the local proposer: flood-forward it, let
    /// the local acceptor answer, and route the answer. Proposer
    /// reactions (e.g. a majority completing) are processed to a fixed
    /// point — on a singleton network a proposal races from prepare to
    /// decision entirely locally.
    fn process_proposer_msg(&mut self, first: ProposerMsg, ctx: &mut Context<'_, WMsg>) {
        // Reuse the node's scratch stack (this function never
        // re-enters itself: `Emit` actions are pushed, not dispatched,
        // and `handle_action` is only called for the other variants).
        let mut work = std::mem::take(&mut self.work_stack);
        debug_assert!(work.is_empty());
        work.push(first);
        while let Some(pm) = work.pop() {
            if let ProposerMsg::Decide { value } = pm {
                self.adopt_decision(value, ctx);
                continue;
            }
            let pn = pm.pn().expect("prepare/propose carries a pn");
            self.note_pn(pn);
            let omega = self.inner().leader.omega();
            self.inner().pflood.offer(pm, omega);
            let response = self.inner().acceptor.handle(&pm);
            let Some(resp) = response else { continue };
            if resp.kind.is_affirmative() {
                *self
                    .stats
                    .affirmative_generated
                    .entry((resp.about, resp.kind))
                    .or_insert(0) += 1;
            }
            let me = self.inner().me;
            if resp.about.id == me {
                // Our own acceptor answering our own proposition:
                // deliver directly to the proposer role.
                let action = self.count_response(resp.about, resp.kind, 1, resp.prev, resp.hint);
                if let ProposerAction::Emit(m) = action {
                    work.push(m);
                } else {
                    self.handle_action(action, ctx);
                }
            } else {
                self.route_response(resp);
            }
        }
        self.work_stack = work;
    }

    /// Feeds an aggregated response to the local proposer, recording
    /// `c(p)` for the Lemma 4.2 check.
    fn count_response(
        &mut self,
        about: ProposalNum,
        kind: RespKind,
        count: u64,
        prev: Option<(ProposalNum, Value)>,
        hint: Option<ProposalNum>,
    ) -> ProposerAction {
        *self
            .stats
            .responses_counted
            .entry((about, kind))
            .or_insert(0) += count;
        let inner = self.inner();
        let me = inner.me;
        let still_leader = inner.leader.omega() == me;
        inner
            .proposer
            .on_response(about, kind, count, prev, hint, me, still_leader)
    }

    /// Queues a freshly generated local response toward its proposer.
    fn route_response(&mut self, resp: Response) {
        let me = self.inner().me;
        if self.cfg.route_via_tree {
            match self.inner().tree.parent_of(resp.about.id) {
                Some(parent) => self.inner().aqueue.push(AcceptorMsg {
                    dest: parent,
                    about: resp.about,
                    kind: resp.kind,
                    count: 1,
                    prev: resp.prev,
                    hint: resp.hint,
                    origin: None,
                }),
                None => self.stats.responses_dropped_no_parent += 1,
            }
        } else {
            let key = (me.raw(), resp.about.tag, resp.about.id.raw(), resp.kind);
            self.inner().flood_seen.insert(key);
            self.inner().aqueue.push(AcceptorMsg {
                dest: resp.about.id,
                about: resp.about,
                kind: resp.kind,
                count: 1,
                prev: resp.prev,
                hint: resp.hint,
                origin: Some(me),
            });
        }
    }

    /// Handles a received in-transit acceptor response: consume it if
    /// we are its proposer, relay it otherwise.
    fn handle_acceptor_msg(&mut self, am: AcceptorMsg, ctx: &mut Context<'_, WMsg>) {
        let me = self.inner().me;
        if self.cfg.route_via_tree {
            if am.dest != me {
                return; // unicast discipline: not addressed to us
            }
            if am.about.id == me {
                let action = self.count_response(am.about, am.kind, am.count, am.prev, am.hint);
                self.handle_action(action, ctx);
            } else {
                match self.inner().tree.parent_of(am.about.id) {
                    Some(parent) => self.inner().aqueue.push(AcceptorMsg { dest: parent, ..am }),
                    None => self.stats.responses_dropped_no_parent += 1,
                }
            }
        } else {
            let origin = am.origin.expect("flood-mode responses carry origins");
            let key = (origin.raw(), am.about.tag, am.about.id.raw(), am.kind);
            if !self.inner().flood_seen.insert(key) {
                return; // already relayed / counted
            }
            if am.about.id == me {
                let action = self.count_response(am.about, am.kind, 1, am.prev, am.hint);
                self.handle_action(action, ctx);
            } else {
                self.inner().aqueue.push(am);
            }
        }
    }

    /// The broadcast service (Algorithm 5): pack one message from each
    /// non-empty queue and broadcast, unless a broadcast is already
    /// outstanding. A decided node announces the decision in every
    /// message it sends.
    fn maybe_send(&mut self, ctx: &mut Context<'_, WMsg>) {
        if ctx.is_busy() {
            return;
        }
        let inner = self.inner.as_mut().expect("node started");
        let proposer_part = match inner.decided {
            Some(value) => Some(ProposerMsg::Decide { value }),
            None => inner.pflood.pop(),
        };
        let msg = WMsg {
            sender: Some(inner.me),
            leader: inner.leader.pop(),
            change: inner.change.pop(),
            search: inner.tree.pop(),
            proposer: proposer_part,
            acceptor: inner.aqueue.pop(),
        };
        if !msg.is_empty() {
            ctx.broadcast(msg);
        }
    }
}

impl Process for WpaxosNode {
    type Msg = WMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, WMsg>) {
        let me = ctx.id();
        self.inner = Some(Inner {
            me,
            leader: LeaderService::new(me),
            change: ChangeService::new(),
            tree: TreeService::new(me, self.cfg.leader_priority),
            pflood: ProposerFlood::new(),
            aqueue: AcceptorQueue::new(self.cfg.aggregate),
            acceptor: Acceptor::new(),
            proposer: Proposer::new(self.input, self.cfg.n as u64),
            decided: None,
            best_leader_pn: None,
            flood_seen: BTreeSet::new(),
        });
        // Initialization sets Ω and dist[me]: a change event, which at
        // a self-believed leader also generates the first proposal.
        self.local_change(ctx);
        self.maybe_send(ctx);
    }

    fn on_receive(&mut self, msg: WMsg, ctx: &mut Context<'_, WMsg>) {
        if self.inner.is_none() {
            return; // not started (cannot happen in the simulator)
        }
        let sender = msg.sender.expect("wPAXOS messages carry the sender id");

        if let Some(lid) = msg.leader {
            if self.inner().leader.receive(lid) {
                let omega = self.inner().leader.omega();
                self.inner().tree.on_leader_change(omega);
                self.inner().pflood.on_leader_change(omega);
                self.inner().best_leader_pn = None;
                self.local_change(ctx);
            }
        }

        if let Some(cm) = msg.change {
            if self.inner().change.receive(cm) {
                self.stats.change_updates += 1;
                self.maybe_generate(ctx);
            }
        }

        if let Some(sm) = msg.search {
            let omega = self.inner().leader.omega();
            if self.inner().tree.receive(sm, sender, omega)
                && (!self.cfg.leader_scoped_changes || sm.root == omega)
            {
                self.local_change(ctx);
            }
        }

        if let Some(pm) = msg.proposer {
            self.process_proposer_msg(pm, ctx);
        }

        if let Some(am) = msg.acceptor {
            self.handle_acceptor_msg(am, ctx);
        }

        self.maybe_send(ctx);
    }

    fn on_ack(&mut self, ctx: &mut Context<'_, WMsg>) {
        if self.inner.is_some() {
            self.maybe_send(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_consensus;
    use crate::wpaxos::wpaxos_node;

    fn run_wpaxos(
        topo: Topology,
        inputs: &[Value],
        scheduler: impl Scheduler + 'static,
    ) -> (Sim<WpaxosNode>, RunReport) {
        let n = topo.len();
        assert_eq!(inputs.len(), n);
        let iv = inputs.to_vec();
        let mut sim = SimBuilder::new(topo, |s| wpaxos_node(iv[s.index()], n))
            .scheduler(scheduler)
            .message_id_budget(10)
            .build();
        let report = sim.run();
        (sim, report)
    }

    #[test]
    fn singleton_decides_its_own_value() {
        let (_, report) = run_wpaxos(Topology::clique(1), &[5], SynchronousScheduler::new(1));
        let check = check_consensus(&[5], &report, &[]);
        check.assert_ok();
        assert_eq!(check.decided, Some(5));
    }

    #[test]
    fn pair_reaches_consensus() {
        let inputs = [3, 8];
        let (_, report) = run_wpaxos(Topology::line(2), &inputs, SynchronousScheduler::new(1));
        check_consensus(&inputs, &report, &[]).assert_ok();
    }

    #[test]
    fn line_reaches_consensus_synchronously() {
        let inputs: Vec<Value> = (0..8).map(|i| i % 2).collect();
        let (_, report) = run_wpaxos(Topology::line(8), &inputs, SynchronousScheduler::new(1));
        check_consensus(&inputs, &report, &[]).assert_ok();
    }

    #[test]
    fn clique_reaches_consensus_under_random_schedulers() {
        for seed in 0..15 {
            let inputs: Vec<Value> = (0..6).map(|i| (i as u64 + seed) % 2).collect();
            let (_, report) =
                run_wpaxos(Topology::clique(6), &inputs, RandomScheduler::new(4, seed));
            let check = check_consensus(&inputs, &report, &[]);
            assert!(check.ok(), "seed {seed}: {:?}", check.violation);
        }
    }

    #[test]
    fn grid_reaches_consensus_under_random_schedulers() {
        for seed in 0..8 {
            let inputs: Vec<Value> = (0..12).map(|i| (i as u64) % 2).collect();
            let (_, report) =
                run_wpaxos(Topology::grid(4, 3), &inputs, RandomScheduler::new(3, seed));
            let check = check_consensus(&inputs, &report, &[]);
            assert!(check.ok(), "seed {seed}: {:?}", check.violation);
        }
    }

    #[test]
    fn random_topologies_reach_consensus() {
        for seed in 0..10 {
            let topo = Topology::random_connected(10, 0.15, seed);
            let inputs: Vec<Value> = (0..10).map(|i| (i as u64 + seed) % 2).collect();
            let (_, report) = run_wpaxos(topo, &inputs, RandomScheduler::new(3, seed * 7 + 1));
            let check = check_consensus(&inputs, &report, &[]);
            assert!(check.ok(), "seed {seed}: {:?}", check.violation);
        }
    }

    #[test]
    fn leader_stabilizes_to_max_id() {
        let (sim, report) = run_wpaxos(
            Topology::line(5),
            &[0, 1, 0, 1, 0],
            SynchronousScheduler::new(1),
        );
        assert!(report.all_decided());
        for i in 0..5 {
            assert_eq!(
                sim.process(Slot(i)).omega(),
                Some(NodeId(4)),
                "slot {i} leader"
            );
        }
    }

    #[test]
    fn tree_routes_point_toward_leader() {
        let (sim, _) = run_wpaxos(
            Topology::line(6),
            &[1, 0, 1, 0, 1, 0],
            SynchronousScheduler::new(1),
        );
        // On a line with ids equal to slots, the leader is node 5; each
        // node's parent toward 5 is its right neighbor.
        for i in 0..5 {
            assert_eq!(
                sim.process(Slot(i)).parent_of(NodeId(5)),
                Some(NodeId(i as u64 + 1)),
                "slot {i} parent"
            );
            assert_eq!(sim.process(Slot(i)).dist_to(NodeId(5)), Some(5 - i as u32));
        }
    }

    #[test]
    fn lemma_4_2_counts_never_exceed_generated() {
        // c(p) <= a(p) for every affirmative proposition, even under
        // random schedulers with shifting trees.
        for seed in 0..12 {
            let topo = Topology::random_connected(9, 0.2, seed);
            let inputs: Vec<Value> = (0..9).map(|i| (i as u64) % 2).collect();
            let (sim, _) = run_wpaxos(topo, &inputs, RandomScheduler::new(4, seed + 100));
            let mut generated: BTreeMap<(ProposalNum, RespKind), u64> = BTreeMap::new();
            let mut counted: BTreeMap<(ProposalNum, RespKind), u64> = BTreeMap::new();
            for i in 0..9 {
                let stats = sim.process(Slot(i)).stats();
                for (k, v) in &stats.affirmative_generated {
                    *generated.entry(*k).or_insert(0) += v;
                }
                for (k, v) in &stats.responses_counted {
                    if k.1.is_affirmative() {
                        *counted.entry(*k).or_insert(0) += v;
                    }
                }
            }
            for (k, c) in &counted {
                // Only the proposition's own proposer counts it, and
                // it must never exceed what acceptors generated.
                let a = generated.get(k).copied().unwrap_or(0);
                assert!(c <= &a, "seed {seed}: c({k:?}) = {c} > a = {a}");
            }
        }
    }

    #[test]
    fn lemma_4_4_tags_stay_polynomial() {
        // Tags are bounded by total change events, far below n^3 here.
        let (sim, _) = run_wpaxos(
            Topology::random_connected(12, 0.2, 5),
            &(0..12).map(|i| i % 2).collect::<Vec<_>>(),
            RandomScheduler::new(3, 11),
        );
        for i in 0..12 {
            let tag = sim.process(Slot(i)).max_tag_seen();
            assert!(tag <= 12 * 12 * 12, "slot {i} tag {tag} blew up");
        }
    }

    #[test]
    fn message_id_budget_holds_at_scale() {
        // The id budget (enforced by the harness) must not depend on n.
        for n in [4usize, 16, 32] {
            let inputs: Vec<Value> = (0..n).map(|i| (i as u64) % 2).collect();
            let (sim, report) = run_wpaxos(
                Topology::random_connected(n, 0.1, 42),
                &inputs,
                RandomScheduler::new(3, 9),
            );
            assert!(report.all_decided(), "n={n}");
            assert!(sim.metrics().max_message_ids <= 10);
        }
    }

    #[test]
    fn flooded_responses_config_still_safe() {
        for seed in 0..6 {
            let inputs: Vec<Value> = (0..7).map(|i| (i as u64) % 2).collect();
            let iv = inputs.clone();
            let mut sim = SimBuilder::new(Topology::star(7), |s| {
                WpaxosNode::new(iv[s.index()], WpaxosConfig::new(7).flooded_responses())
            })
            .scheduler(RandomScheduler::new(3, seed))
            .message_id_budget(10)
            .build();
            let report = sim.run();
            let check = check_consensus(&inputs, &report, &[]);
            assert!(check.ok(), "seed {seed}: {:?}", check.violation);
        }
    }

    #[test]
    fn ablated_configs_still_reach_consensus() {
        for cfg in [
            WpaxosConfig::new(8).without_aggregation(),
            WpaxosConfig::new(8).without_leader_priority(),
        ] {
            let inputs: Vec<Value> = (0..8).map(|i| (i as u64) % 2).collect();
            let iv = inputs.clone();
            let mut sim = SimBuilder::new(Topology::grid(4, 2), |s| {
                WpaxosNode::new(iv[s.index()], cfg)
            })
            .scheduler(RandomScheduler::new(4, 3))
            .build();
            let report = sim.run();
            check_consensus(&inputs, &report, &[]).assert_ok();
        }
    }

    #[test]
    fn id_permutation_does_not_break_consensus() {
        // Ids assigned in reverse of topology position: the leader is
        // now at slot 0 of the line.
        let inputs: Vec<Value> = vec![1, 0, 1, 0, 1];
        let iv = inputs.clone();
        let mut sim = SimBuilder::new(Topology::line(5), |s| wpaxos_node(iv[s.index()], 5))
            .ids((0..5).rev().map(|i| NodeId(i as u64)).collect())
            .scheduler(RandomScheduler::new(3, 2))
            .build();
        let report = sim.run();
        check_consensus(&inputs, &report, &[]).assert_ok();
        // Everyone stabilized to the max id, which sits at slot 0.
        assert_eq!(sim.process(Slot(3)).omega(), Some(NodeId(4)));
        assert_eq!(sim.id_of(Slot(0)), NodeId(4));
    }

    #[test]
    fn decision_time_scales_with_diameter_not_n() {
        // Same n, different diameters: the star (D=2) decides much
        // faster than the line (D=n-1) under the max-delay adversary.
        let n = 24;
        let f_ack = 4;
        let inputs: Vec<Value> = (0..n).map(|i| (i as u64) % 2).collect();
        let (_, line_report) =
            run_wpaxos(Topology::line(n), &inputs, MaxDelayScheduler::new(f_ack));
        let (_, star_report) =
            run_wpaxos(Topology::star(n), &inputs, MaxDelayScheduler::new(f_ack));
        assert!(line_report.all_decided() && star_report.all_decided());
        let line_t = line_report.max_decision_time().unwrap().ticks();
        let star_t = star_report.max_decision_time().unwrap().ticks();
        assert!(
            star_t * 3 < line_t,
            "star {star_t} not much faster than line {line_t}"
        );
    }
}
