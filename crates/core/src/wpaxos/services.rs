//! The wPAXOS support services (paper Figure 3, Algorithms 2–5).
//!
//! Each service owns a message queue; the broadcast multiplexer in
//! [`node`](super::node) drains one message per queue per physical
//! broadcast (Algorithm 5). The services here are pure state machines —
//! they never touch the MAC layer directly, which keeps them unit
//! testable in isolation.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use amacl_model::ids::NodeId;
use amacl_model::sim::time::Timestamp;

use super::msgs::{AcceptorMsg, ChangeMsg, ProposerMsg, SearchMsg};

/// Leader election service (Algorithm 2): flood the maximum id.
///
/// Maintains `Ω`, the current leader estimate. The queue holds at most
/// one pending announcement (`UpdateQ` empties it before enqueueing).
#[derive(Clone, Debug)]
pub struct LeaderService {
    omega: NodeId,
    queue: Option<NodeId>,
}

impl LeaderService {
    /// Initializes with `Ω = my own id` and that id queued for
    /// announcement.
    pub fn new(me: NodeId) -> Self {
        Self {
            omega: me,
            queue: Some(me),
        }
    }

    /// Current leader estimate `Ω`.
    pub fn omega(&self) -> NodeId {
        self.omega
    }

    /// Handles a received leader announcement. Returns `true` when `Ω`
    /// changed (the caller must then notify the other services).
    pub fn receive(&mut self, id: NodeId) -> bool {
        if id > self.omega {
            self.omega = id;
            self.queue = Some(id);
            true
        } else {
            false
        }
    }

    /// Takes the queued announcement for the next broadcast.
    pub fn pop(&mut self) -> Option<NodeId> {
        self.queue.take()
    }
}

/// Change service (Algorithm 3): flood freshness timestamps so the
/// eventual leader proposes after stabilization.
///
/// `lastChange` starts at minus infinity; a change (local or received)
/// with a larger timestamp replaces the queue content. Every accepted
/// update is an `UpdateQ` call — the caller checks `Ω == me` and, if
/// so, generates a new Paxos proposal.
#[derive(Clone, Debug)]
pub struct ChangeService {
    last: Timestamp,
    queue: Option<ChangeMsg>,
}

impl ChangeService {
    /// Initializes with `lastChange = -infinity` and an empty queue.
    pub fn new() -> Self {
        Self {
            last: Timestamp::MINUS_INFINITY,
            queue: None,
        }
    }

    /// The current `lastChange` watermark.
    pub fn last(&self) -> Timestamp {
        self.last
    }

    /// Records a *local* change (`Ω` or some `dist` entry updated):
    /// unconditionally bumps `lastChange` to the fresh timestamp and
    /// queues the announcement.
    pub fn local_change(&mut self, ts: Timestamp, me: NodeId) {
        self.last = ts;
        self.queue = Some(ChangeMsg { ts, id: me });
    }

    /// Handles a received change announcement. Returns `true` when it
    /// was fresher than `lastChange` (i.e. `UpdateQ` ran).
    pub fn receive(&mut self, msg: ChangeMsg) -> bool {
        if msg.ts > self.last {
            self.last = msg.ts;
            self.queue = Some(msg);
            true
        } else {
            false
        }
    }

    /// Takes the queued announcement for the next broadcast.
    pub fn pop(&mut self) -> Option<ChangeMsg> {
        self.queue.take()
    }
}

impl Default for ChangeService {
    fn default() -> Self {
        Self::new()
    }
}

/// Tree-building service (Algorithm 4): Bellman-Ford iterative
/// refinement of shortest-path trees rooted at every node, with
/// leader-priority queueing.
#[derive(Clone, Debug)]
pub struct TreeService {
    dist: BTreeMap<NodeId, u32>,
    parent: BTreeMap<NodeId, NodeId>,
    queue: VecDeque<SearchMsg>,
    leader_priority: bool,
}

impl TreeService {
    /// Initializes: `dist[me] = 0`, `parent[me] = me`, and a
    /// `(search, me, 1)` announcement queued.
    pub fn new(me: NodeId, leader_priority: bool) -> Self {
        let mut dist = BTreeMap::new();
        dist.insert(me, 0);
        let mut parent = BTreeMap::new();
        parent.insert(me, me);
        let mut queue = VecDeque::new();
        queue.push_back(SearchMsg { root: me, hops: 1 });
        Self {
            dist,
            parent,
            queue,
            leader_priority,
        }
    }

    /// Best-known hop distance to `root`, if any.
    pub fn dist_of(&self, root: NodeId) -> Option<u32> {
        self.dist.get(&root).copied()
    }

    /// Current parent (next hop) toward `root`, if known.
    pub fn parent_of(&self, root: NodeId) -> Option<NodeId> {
        self.parent.get(&root).copied()
    }

    /// Handles a received search message from `sender`. Returns `true`
    /// when it improved a distance (a change event for the change
    /// service).
    pub fn receive(&mut self, msg: SearchMsg, sender: NodeId, omega: NodeId) -> bool {
        let cur = self.dist.get(&msg.root).copied().unwrap_or(u32::MAX);
        if msg.hops < cur {
            self.dist.insert(msg.root, msg.hops);
            self.parent.insert(msg.root, sender);
            self.update_q(
                SearchMsg {
                    root: msg.root,
                    hops: msg.hops + 1,
                },
                omega,
            );
            true
        } else {
            false
        }
    }

    /// `UpdateQ` (Algorithm 4): enqueue, discard stale entries for the
    /// same root with larger hop counts, and move the current leader's
    /// entry to the front.
    fn update_q(&mut self, msg: SearchMsg, omega: NodeId) {
        // At most one entry per root survives; an existing entry for
        // this root necessarily has a larger hop count (distances only
        // improve), so it is the stale one to discard.
        self.queue.retain(|e| e.root != msg.root);
        self.queue.push_back(msg);
        self.promote(omega);
    }

    /// `OnLeaderChange` (Algorithm 4): re-prioritize the leader's
    /// pending search message.
    pub fn on_leader_change(&mut self, omega: NodeId) {
        self.promote(omega);
    }

    fn promote(&mut self, omega: NodeId) {
        if !self.leader_priority {
            return;
        }
        if let Some(pos) = self.queue.iter().position(|e| e.root == omega) {
            if pos > 0 {
                let m = self.queue.remove(pos).expect("position exists");
                self.queue.push_front(m);
            }
        }
    }

    /// Takes the front search message for the next broadcast.
    pub fn pop(&mut self) -> Option<SearchMsg> {
        self.queue.pop_front()
    }

    /// Number of queued search messages (diagnostics).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

/// Flooding queue for proposer messages, with the paper's two
/// invariants: only the current leader's messages, and only those for
/// the largest proposal number seen so far from that leader.
#[derive(Clone, Debug, Default)]
pub struct ProposerFlood {
    queue: Option<ProposerMsg>,
    seen: BTreeSet<(u64, u64, u8)>,
}

impl ProposerFlood {
    /// Creates an empty flood queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` if this prepare/propose was already offered here (flood
    /// dedup: "if you see a proposer message from `u` for the first
    /// time...").
    pub fn has_seen(&self, msg: &ProposerMsg) -> bool {
        msg.key()
            .is_some_and(|(pn, rank)| self.seen.contains(&(pn.tag, pn.id.raw(), rank)))
    }

    /// Offers a message for re-flooding. Returns `true` when queued.
    ///
    /// `Decide` messages are handled at the node level (a decided node
    /// announces its decision in every broadcast), so they are never
    /// queued here.
    pub fn offer(&mut self, msg: ProposerMsg, omega: NodeId) -> bool {
        let Some((pn, rank)) = msg.key() else {
            return false;
        };
        if !self.seen.insert((pn.tag, pn.id.raw(), rank)) {
            return false;
        }
        if pn.id != omega {
            return false;
        }
        match self.queue.and_then(|q| q.key()) {
            Some(existing) if existing >= (pn, rank) => false,
            _ => {
                self.queue = Some(msg);
                true
            }
        }
    }

    /// Drops a queued message that no longer belongs to the current
    /// leader.
    pub fn on_leader_change(&mut self, omega: NodeId) {
        if let Some(q) = self.queue {
            if q.pn().is_some_and(|pn| pn.id != omega) {
                self.queue = None;
            }
        }
    }

    /// Takes the queued message for the next broadcast.
    pub fn pop(&mut self) -> Option<ProposerMsg> {
        self.queue.take()
    }
}

/// Queue of acceptor responses awaiting relay, with optional
/// aggregation.
#[derive(Clone, Debug)]
pub struct AcceptorQueue {
    items: VecDeque<AcceptorMsg>,
    aggregate: bool,
}

impl AcceptorQueue {
    /// Creates an empty queue; `aggregate` enables count-merging.
    pub fn new(aggregate: bool) -> Self {
        Self {
            items: VecDeque::new(),
            aggregate,
        }
    }

    /// Enqueues a response, merging it into an existing compatible
    /// entry (same destination, proposition, and kind) when aggregation
    /// is on: counts add, and the highest-numbered `prev` / `hint`
    /// survive.
    pub fn push(&mut self, msg: AcceptorMsg) {
        if self.aggregate {
            if let Some(existing) = self
                .items
                .iter_mut()
                .find(|e| e.dest == msg.dest && e.about == msg.about && e.kind == msg.kind)
            {
                existing.count += msg.count;
                existing.prev = match (existing.prev, msg.prev) {
                    (Some(a), Some(b)) => Some(if a.0 >= b.0 { a } else { b }),
                    (a, b) => a.or(b),
                };
                existing.hint = existing.hint.max(msg.hint);
                return;
            }
        }
        self.items.push_back(msg);
    }

    /// Drops responses that are not about the given proposition (the
    /// paper's invariant: only the current leader's largest proposal
    /// number survives in the queue).
    pub fn prune_except(&mut self, keep: super::msgs::ProposalNum) {
        self.items.retain(|e| e.about == keep);
    }

    /// Takes the front response for the next broadcast.
    pub fn pop(&mut self) -> Option<AcceptorMsg> {
        self.items.pop_front()
    }

    /// Number of queued responses (the bottleneck signal in E3).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wpaxos::msgs::{ProposalNum, RespKind};
    use amacl_model::sim::time::Time;

    fn ts(t: u64, node: u64) -> Timestamp {
        Timestamp {
            time: Time(t),
            node,
            seq: 0,
        }
    }

    #[test]
    fn leader_service_floods_max_id() {
        let mut svc = LeaderService::new(NodeId(3));
        assert_eq!(svc.omega(), NodeId(3));
        assert_eq!(svc.pop(), Some(NodeId(3)));
        assert_eq!(svc.pop(), None);
        assert!(!svc.receive(NodeId(2)), "smaller id ignored");
        assert!(svc.receive(NodeId(7)));
        assert_eq!(svc.omega(), NodeId(7));
        assert_eq!(svc.pop(), Some(NodeId(7)));
        assert!(!svc.receive(NodeId(7)), "duplicate ignored");
    }

    #[test]
    fn change_service_keeps_freshest() {
        let mut svc = ChangeService::new();
        assert!(svc.receive(ChangeMsg {
            ts: ts(5, 1),
            id: NodeId(1)
        }));
        assert!(!svc.receive(ChangeMsg {
            ts: ts(4, 9),
            id: NodeId(9)
        }));
        svc.local_change(ts(9, 2), NodeId(2));
        assert_eq!(svc.last(), ts(9, 2));
        let q = svc.pop().unwrap();
        assert_eq!(q.id, NodeId(2));
        assert_eq!(svc.pop(), None, "UpdateQ keeps at most one entry");
    }

    #[test]
    fn tree_service_improves_distances() {
        let me = NodeId(0);
        let omega = NodeId(9);
        let mut svc = TreeService::new(me, true);
        assert_eq!(svc.dist_of(me), Some(0));
        assert_eq!(svc.parent_of(me), Some(me));

        assert!(svc.receive(
            SearchMsg {
                root: NodeId(5),
                hops: 3
            },
            NodeId(2),
            omega
        ));
        assert_eq!(svc.dist_of(NodeId(5)), Some(3));
        assert_eq!(svc.parent_of(NodeId(5)), Some(NodeId(2)));

        // Worse offer rejected; better offer replaces parent.
        assert!(!svc.receive(
            SearchMsg {
                root: NodeId(5),
                hops: 4
            },
            NodeId(3),
            omega
        ));
        assert!(svc.receive(
            SearchMsg {
                root: NodeId(5),
                hops: 1
            },
            NodeId(4),
            omega
        ));
        assert_eq!(svc.parent_of(NodeId(5)), Some(NodeId(4)));
        // Only the improved entry remains queued for root 5.
        let msgs: Vec<SearchMsg> = std::iter::from_fn(|| svc.pop()).collect();
        let for5: Vec<_> = msgs.iter().filter(|m| m.root == NodeId(5)).collect();
        assert_eq!(for5.len(), 1);
        assert_eq!(for5[0].hops, 2);
    }

    #[test]
    fn tree_service_promotes_leader_entries() {
        let me = NodeId(0);
        let omega = NodeId(9);
        let mut svc = TreeService::new(me, true);
        svc.receive(
            SearchMsg {
                root: NodeId(5),
                hops: 1,
            },
            NodeId(5),
            omega,
        );
        svc.receive(
            SearchMsg {
                root: NodeId(9),
                hops: 2,
            },
            NodeId(5),
            omega,
        );
        // Leader 9's entry jumps the queue.
        assert_eq!(svc.pop().unwrap().root, NodeId(9));
    }

    #[test]
    fn tree_service_without_priority_is_fifo() {
        let me = NodeId(0);
        let omega = NodeId(9);
        let mut svc = TreeService::new(me, false);
        svc.receive(
            SearchMsg {
                root: NodeId(5),
                hops: 1,
            },
            NodeId(5),
            omega,
        );
        svc.receive(
            SearchMsg {
                root: NodeId(9),
                hops: 2,
            },
            NodeId(5),
            omega,
        );
        assert_eq!(svc.pop().unwrap().root, me, "initial self entry first");
        assert_eq!(svc.pop().unwrap().root, NodeId(5));
        assert_eq!(svc.pop().unwrap().root, NodeId(9));
    }

    #[test]
    fn on_leader_change_repromotes() {
        let me = NodeId(0);
        let mut svc = TreeService::new(me, true);
        svc.receive(
            SearchMsg {
                root: NodeId(5),
                hops: 1,
            },
            NodeId(5),
            NodeId(0),
        );
        svc.receive(
            SearchMsg {
                root: NodeId(7),
                hops: 1,
            },
            NodeId(7),
            NodeId(0),
        );
        svc.on_leader_change(NodeId(7));
        assert_eq!(svc.pop().unwrap().root, NodeId(7));
    }

    #[test]
    fn proposer_flood_applies_invariants() {
        let omega = NodeId(9);
        let mut q = ProposerFlood::new();
        let low = ProposalNum::new(1, NodeId(9));
        let high = ProposalNum::new(2, NodeId(9));
        let foreign = ProposalNum::new(5, NodeId(3));

        assert!(q.offer(ProposerMsg::Prepare { pn: low }, omega));
        // Duplicate dropped.
        assert!(!q.offer(ProposerMsg::Prepare { pn: low }, omega));
        assert!(q.has_seen(&ProposerMsg::Prepare { pn: low }));
        // Non-leader message dropped (but remembered as seen).
        assert!(!q.offer(ProposerMsg::Prepare { pn: foreign }, omega));
        // Larger pn replaces queued smaller one.
        assert!(q.offer(ProposerMsg::Prepare { pn: high }, omega));
        assert_eq!(q.pop(), Some(ProposerMsg::Prepare { pn: high }));
        assert_eq!(q.pop(), None);
        // Propose supersedes prepare at the same pn.
        let mut q = ProposerFlood::new();
        q.offer(ProposerMsg::Prepare { pn: high }, omega);
        assert!(q.offer(ProposerMsg::Propose { pn: high, value: 1 }, omega));
        assert_eq!(q.pop(), Some(ProposerMsg::Propose { pn: high, value: 1 }));
    }

    #[test]
    fn proposer_flood_drops_stale_leader_on_change() {
        let mut q = ProposerFlood::new();
        let pn = ProposalNum::new(1, NodeId(3));
        q.offer(ProposerMsg::Prepare { pn }, NodeId(3));
        q.on_leader_change(NodeId(9));
        assert_eq!(q.pop(), None);
    }

    fn resp(dest: u64, tag: u64, kind: RespKind, count: u64) -> AcceptorMsg {
        AcceptorMsg {
            dest: NodeId(dest),
            about: ProposalNum::new(tag, NodeId(9)),
            kind,
            count,
            prev: None,
            hint: None,
            origin: None,
        }
    }

    #[test]
    fn acceptor_queue_aggregates_counts() {
        let mut q = AcceptorQueue::new(true);
        q.push(resp(1, 1, RespKind::PrepareAck, 1));
        q.push(resp(1, 1, RespKind::PrepareAck, 3));
        q.push(resp(1, 1, RespKind::PrepareNack, 1)); // different kind
        q.push(resp(2, 1, RespKind::PrepareAck, 1)); // different dest
        assert_eq!(q.len(), 3);
        let first = q.pop().unwrap();
        assert_eq!(first.count, 4);
    }

    #[test]
    fn aggregation_keeps_max_prev_and_hint() {
        let mut q = AcceptorQueue::new(true);
        let small = ProposalNum::new(1, NodeId(1));
        let big = ProposalNum::new(2, NodeId(2));
        let mut a = resp(1, 5, RespKind::PrepareAck, 1);
        a.prev = Some((small, 10));
        a.hint = Some(small);
        let mut b = resp(1, 5, RespKind::PrepareAck, 1);
        b.prev = Some((big, 20));
        b.hint = Some(big);
        q.push(a);
        q.push(b);
        let merged = q.pop().unwrap();
        assert_eq!(merged.count, 2);
        assert_eq!(merged.prev, Some((big, 20)));
        assert_eq!(merged.hint, Some(big));
    }

    #[test]
    fn unaggregated_queue_keeps_entries_separate() {
        let mut q = AcceptorQueue::new(false);
        q.push(resp(1, 1, RespKind::PrepareAck, 1));
        q.push(resp(1, 1, RespKind::PrepareAck, 1));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn prune_keeps_only_current_proposition() {
        let mut q = AcceptorQueue::new(true);
        q.push(resp(1, 1, RespKind::PrepareAck, 1));
        q.push(resp(1, 2, RespKind::PrepareAck, 1));
        q.prune_except(ProposalNum::new(2, NodeId(9)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().about.tag, 2);
        assert!(q.is_empty());
    }
}
