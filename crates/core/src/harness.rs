//! High-level run helpers shared by examples, integration tests, and
//! the benchmark harness.

use amacl_model::prelude::*;

use crate::baselines::flood_gather::FloodGather;
use crate::two_phase::TwoPhase;
use crate::verify::{check_consensus, ConsensusCheck};
use crate::wpaxos::{WpaxosConfig, WpaxosNode};

/// A finished consensus execution: the raw report plus the property
/// verdict.
#[derive(Clone, Debug)]
pub struct ConsensusRun {
    /// Input values, one per slot.
    pub inputs: Vec<Value>,
    /// The simulator's report.
    pub report: RunReport,
    /// Agreement/validity/termination verdict.
    pub check: ConsensusCheck,
}

impl ConsensusRun {
    /// Latest decision time, in ticks (panics if nobody decided).
    pub fn decision_ticks(&self) -> u64 {
        self.report
            .max_decision_time()
            .expect("at least one decision")
            .ticks()
    }

    /// Decision time normalized by `F_ack` (the unit the paper's bounds
    /// are stated in).
    pub fn decision_over_f_ack(&self, f_ack: u64) -> f64 {
        self.decision_ticks() as f64 / f_ack as f64
    }
}

/// Runs Two-Phase Consensus on a clique of `inputs.len()` nodes.
pub fn run_two_phase(inputs: &[Value], scheduler: impl Scheduler + 'static) -> ConsensusRun {
    let iv = inputs.to_vec();
    let mut sim = SimBuilder::new(Topology::clique(inputs.len()), |s| {
        TwoPhase::new(iv[s.index()])
    })
    .scheduler(scheduler)
    .message_id_budget(1)
    .build();
    let report = sim.run();
    let check = check_consensus(inputs, &report, &[]);
    ConsensusRun {
        inputs: inputs.to_vec(),
        report,
        check,
    }
}

/// Runs wPAXOS with the paper's default configuration.
pub fn run_wpaxos(
    topo: Topology,
    inputs: &[Value],
    scheduler: impl Scheduler + 'static,
) -> ConsensusRun {
    run_wpaxos_with(topo, inputs, WpaxosConfig::new(inputs.len()), scheduler)
}

/// Runs wPAXOS on an explicit engine queue core (the bench harness
/// sweeps both cores; everything else inherits the
/// `AMACL_QUEUE_CORE` default via [`run_wpaxos`]).
pub fn run_wpaxos_on(
    topo: Topology,
    inputs: &[Value],
    scheduler: impl Scheduler + 'static,
    core: QueueCoreKind,
) -> ConsensusRun {
    let cfg = WpaxosConfig::new(inputs.len());
    run_wpaxos_inner(topo, inputs, cfg, scheduler, Some(core), None)
}

/// Runs wPAXOS on an explicit queue core **and shard count** (the
/// bench harness sweeps the full `(core, n, shards)` grid; sharding is
/// observably identity-preserving, so this measures coordination
/// overhead, not different executions).
pub fn run_wpaxos_sharded(
    topo: Topology,
    inputs: &[Value],
    scheduler: impl Scheduler + 'static,
    core: QueueCoreKind,
    shards: usize,
) -> ConsensusRun {
    let cfg = WpaxosConfig::new(inputs.len());
    run_wpaxos_inner(topo, inputs, cfg, scheduler, Some(core), Some((shards, 1)))
}

/// Runs wPAXOS on an explicit queue core, shard count, **and worker
/// thread count** — the thread-per-shard parallel stepper. The
/// execution is byte-identical to the serial one at any `(shards,
/// threads)`, so speedup comparisons measure the same work.
pub fn run_wpaxos_threaded(
    topo: Topology,
    inputs: &[Value],
    scheduler: impl Scheduler + 'static,
    core: QueueCoreKind,
    shards: usize,
    threads: usize,
) -> ConsensusRun {
    let cfg = WpaxosConfig::new(inputs.len());
    run_wpaxos_inner(
        topo,
        inputs,
        cfg,
        scheduler,
        Some(core),
        Some((shards, threads)),
    )
}

/// Runs wPAXOS with an explicit configuration (ablations, the flooding
/// baseline).
pub fn run_wpaxos_with(
    topo: Topology,
    inputs: &[Value],
    cfg: WpaxosConfig,
    scheduler: impl Scheduler + 'static,
) -> ConsensusRun {
    run_wpaxos_inner(topo, inputs, cfg, scheduler, None, None)
}

/// The one wPAXOS run recipe every public wrapper shares; `core:
/// None` / `sharding: None` keep the builder's `AMACL_QUEUE_CORE` /
/// `AMACL_SHARDS` / `AMACL_THREADS` defaults.
fn run_wpaxos_inner(
    topo: Topology,
    inputs: &[Value],
    cfg: WpaxosConfig,
    scheduler: impl Scheduler + 'static,
    core: Option<QueueCoreKind>,
    sharding: Option<(usize, usize)>,
) -> ConsensusRun {
    assert_eq!(topo.len(), inputs.len(), "one input per node");
    let iv = inputs.to_vec();
    let mut builder = SimBuilder::new(topo, |s| WpaxosNode::new(iv[s.index()], cfg))
        .scheduler(scheduler)
        .message_id_budget(10);
    if let Some(core) = core {
        builder = builder.queue_core(core);
    }
    if let Some((shards, threads)) = sharding {
        builder = builder.shards(shards).threads(threads);
    }
    let report = builder.build().run();
    let check = check_consensus(inputs, &report, &[]);
    ConsensusRun {
        inputs: inputs.to_vec(),
        report,
        check,
    }
}

/// Runs the flood-and-gather baseline.
pub fn run_flood_gather(
    topo: Topology,
    inputs: &[Value],
    scheduler: impl Scheduler + 'static,
) -> ConsensusRun {
    assert_eq!(topo.len(), inputs.len(), "one input per node");
    let n = inputs.len();
    let iv = inputs.to_vec();
    let mut sim = SimBuilder::new(topo, |s| FloodGather::new(iv[s.index()], n))
        .scheduler(scheduler)
        .message_id_budget(1)
        .build();
    let report = sim.run();
    let check = check_consensus(inputs, &report, &[]);
    ConsensusRun {
        inputs: inputs.to_vec(),
        report,
        check,
    }
}

/// Alternating binary inputs `0, 1, 0, 1, ...` — the adversarial input
/// pattern used across experiments.
pub fn alternating_inputs(n: usize) -> Vec<Value> {
    (0..n).map(|i| (i % 2) as Value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_phase_helper_runs_clean() {
        let run = run_two_phase(&alternating_inputs(5), SynchronousScheduler::new(2));
        run.check.assert_ok();
        assert_eq!(run.decision_ticks(), 4);
        assert!((run.decision_over_f_ack(2) - 2.0).abs() < f64::EPSILON);
    }

    #[test]
    fn wpaxos_helper_runs_clean() {
        let run = run_wpaxos(
            Topology::grid(3, 2),
            &alternating_inputs(6),
            SynchronousScheduler::new(1),
        );
        run.check.assert_ok();
    }

    #[test]
    fn flood_gather_helper_runs_clean() {
        let run = run_flood_gather(
            Topology::ring(6),
            &alternating_inputs(6),
            SynchronousScheduler::new(1),
        );
        run.check.assert_ok();
        assert_eq!(run.check.decided, Some(0));
    }

    #[test]
    fn alternating_inputs_shape() {
        assert_eq!(alternating_inputs(4), vec![0, 1, 0, 1]);
        assert!(alternating_inputs(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "one input per node")]
    fn input_length_mismatch_rejected() {
        run_wpaxos(Topology::line(3), &[0, 1], SynchronousScheduler::new(1));
    }
}
