//! `IdFloodQuiesce`: consensus by quiescence detection — the algorithm
//! Theorem 3.9 defeats.
//!
//! A node that knows the diameter `D` but **not** the network size can
//! try to substitute quiescence for counting: flood `(id, value)`
//! pairs, and decide the minimum value seen once `quiet` consecutive
//! own-broadcast rounds brought no new information. Under the
//! synchronous scheduler this is correct on every line `L_d` with
//! `d <= D` (Lemma 3.8's premise — note the algorithm works for *all*
//! line lengths without knowing which one it is on).
//!
//! Theorem 3.9's `K_D` network (Figure 2) breaks it: the
//! semi-synchronous scheduler silences the hub long enough that each
//! `L_D` copy quiesces on its own uniform input and decides it —
//! disagreeing with the other copy (experiment E6). Knowing `n` is what
//! rules this trap out, because the copies would still be waiting for
//! `n - |L_D|` missing ids.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use amacl_model::ids::NodeId;
use amacl_model::prelude::*;

/// Flood payload: a learned `(id, value)` pair, or a bare heartbeat
/// that keeps rounds ticking once the queue drains.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct QuiesceMsg(pub Option<(NodeId, Value)>);

impl Payload for QuiesceMsg {
    fn id_count(&self) -> usize {
        usize::from(self.0.is_some())
    }
}

/// A quiescence-detecting flooding node.
#[derive(Clone, Debug)]
pub struct IdFloodQuiesce {
    input: Value,
    quiet_threshold: u64,
    known: BTreeMap<NodeId, Value>,
    outq: VecDeque<(NodeId, Value)>,
    forwarded: BTreeSet<NodeId>,
    quiet_rounds: u64,
}

impl IdFloodQuiesce {
    /// Creates a node that decides after `quiet_threshold` consecutive
    /// acknowledged broadcasts during which nothing new arrived.
    /// Callers typically pass a function of the known diameter, e.g.
    /// `2 * D`.
    ///
    /// # Panics
    ///
    /// Panics if `quiet_threshold == 0`.
    pub fn new(input: Value, quiet_threshold: u64) -> Self {
        assert!(quiet_threshold > 0);
        Self {
            input,
            quiet_threshold,
            known: BTreeMap::new(),
            outq: VecDeque::new(),
            forwarded: BTreeSet::new(),
            quiet_rounds: 0,
        }
    }

    /// Ids learned so far (diagnostics for the E6 demo).
    pub fn known_ids(&self) -> usize {
        self.known.len()
    }

    fn learn(&mut self, id: NodeId, value: Value) -> bool {
        if self.known.contains_key(&id) {
            return false;
        }
        self.known.insert(id, value);
        if self.forwarded.insert(id) {
            self.outq.push_back((id, value));
        }
        true
    }

    fn next_payload(&mut self) -> QuiesceMsg {
        QuiesceMsg(self.outq.pop_front())
    }
}

impl Process for IdFloodQuiesce {
    type Msg = QuiesceMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, QuiesceMsg>) {
        let me = ctx.id();
        self.learn(me, self.input);
        let payload = self.next_payload();
        ctx.broadcast(payload);
    }

    fn on_receive(&mut self, msg: QuiesceMsg, _ctx: &mut Context<'_, QuiesceMsg>) {
        if let QuiesceMsg(Some((id, value))) = msg {
            if self.learn(id, value) {
                self.quiet_rounds = 0;
            }
        }
    }

    fn on_ack(&mut self, ctx: &mut Context<'_, QuiesceMsg>) {
        if ctx.decided().is_some() {
            return;
        }
        if self.outq.is_empty() {
            self.quiet_rounds += 1;
            if self.quiet_rounds >= self.quiet_threshold {
                let min = *self.known.values().min().expect("knows own value");
                ctx.decide(min);
                return;
            }
        }
        let payload = self.next_payload();
        ctx.broadcast(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_consensus;

    fn run(
        topo: Topology,
        inputs: &[Value],
        quiet: u64,
        scheduler: impl Scheduler + 'static,
    ) -> RunReport {
        let iv = inputs.to_vec();
        let mut sim = SimBuilder::new(topo, |s| IdFloodQuiesce::new(iv[s.index()], quiet))
            .scheduler(scheduler)
            .message_id_budget(1)
            .build();
        sim.run()
    }

    #[test]
    fn correct_on_every_line_length_without_knowing_n() {
        // The same quiet threshold (derived from D = 8) works on all
        // shorter lines — Lemma 3.8's requirement.
        let quiet = 2 * 8;
        for n in [2usize, 4, 6, 9] {
            for b in [0u64, 1] {
                let inputs = vec![b; n];
                let report = run(
                    Topology::line(n),
                    &inputs,
                    quiet,
                    SynchronousScheduler::new(1),
                );
                let check = check_consensus(&inputs, &report, &[]);
                check.assert_ok();
                assert_eq!(check.decided, Some(b), "n={n} b={b}");
            }
        }
    }

    #[test]
    fn mixed_inputs_converge_to_min_on_lines() {
        let inputs = vec![1, 0, 1, 1, 0, 1];
        let report = run(Topology::line(6), &inputs, 12, SynchronousScheduler::new(1));
        let check = check_consensus(&inputs, &report, &[]);
        check.assert_ok();
        assert_eq!(check.decided, Some(0));
    }

    #[test]
    fn decision_time_tracks_quiet_threshold() {
        let inputs = vec![1, 1];
        let fast = run(Topology::line(2), &inputs, 3, SynchronousScheduler::new(1));
        let slow = run(Topology::line(2), &inputs, 9, SynchronousScheduler::new(1));
        assert!(fast.max_decision_time().unwrap() < slow.max_decision_time().unwrap());
    }

    #[test]
    fn heartbeats_carry_no_ids() {
        assert_eq!(QuiesceMsg(None).id_count(), 0);
        assert_eq!(QuiesceMsg(Some((NodeId(1), 0))).id_count(), 1);
    }
}
