//! Baseline and foil algorithms.
//!
//! These are the comparison points and counterexample algorithms the
//! paper reasons about but does not spell out:
//!
//! * [`flood_gather::FloodGather`] — the "something simpler" the paper
//!   mentions replacing Paxos with (Section 4.2, footnote on gathering
//!   all values): flood every `(id, value)` pair, decide once all `n`
//!   are known. Correct, but `Θ(n * F_ack)` at bottlenecks because each
//!   message carries `O(1)` pairs. The flooding-Paxos baseline is
//!   [`WpaxosConfig::flooded_responses`](crate::wpaxos::WpaxosConfig::flooded_responses).
//! * [`anonymous_flood::SyncFloodMin`] — an *anonymous* algorithm
//!   (never reads its id) that is correct on known-diameter networks
//!   under the synchronous scheduler; Theorem 3.3's construction makes
//!   it violate agreement (experiment E5). Run with fewer rounds than
//!   `floor(D/2)`, it also serves as the "eager" algorithm that the
//!   Theorem 3.10 partition argument catches (experiment E4).
//! * [`quiesce::IdFloodQuiesce`] — an id-using algorithm that does
//!   *not* know `n` and instead detects quiescence; correct on every
//!   line under the synchronous scheduler (Lemma 3.8's premise), broken
//!   by the `K_D` construction of Theorem 3.9 (experiment E6).

pub mod anonymous_flood;
pub mod flood_gather;
pub mod quiesce;
