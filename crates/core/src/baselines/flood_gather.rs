//! Flood-and-gather consensus: the simple-but-slow alternative.
//!
//! With unique ids, knowledge of `n`, and no crash failures, consensus
//! does not *need* Paxos: every node floods every `(id, value)` pair it
//! learns, and decides the minimum value once it has seen all `n` pairs
//! (Section 4.2: "we could, for example, simply gather all values at
//! all nodes"). The catch is the model's message-size restriction: each
//! broadcast carries `O(1)` pairs, so a bottleneck node that must relay
//! `Ω(n)` pairs needs `Ω(n)` broadcasts — `Θ(n * F_ack)` overall, the
//! gap wPAXOS's aggregation closes (experiment E3).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use amacl_model::ids::NodeId;
use amacl_model::prelude::*;

/// One `(id, value)` pair in flight.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct PairMsg {
    /// The node the value belongs to.
    pub id: NodeId,
    /// That node's initial value.
    pub value: Value,
}

impl Payload for PairMsg {
    fn id_count(&self) -> usize {
        1
    }
}

/// A flood-and-gather node.
#[derive(Clone, Debug)]
pub struct FloodGather {
    input: Value,
    n: usize,
    known: BTreeMap<NodeId, Value>,
    outq: VecDeque<PairMsg>,
    queued: BTreeSet<NodeId>,
}

impl FloodGather {
    /// Creates a node with its input value and the known network size.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(input: Value, n: usize) -> Self {
        assert!(n > 0);
        Self {
            input,
            n,
            known: BTreeMap::new(),
            outq: VecDeque::new(),
            queued: BTreeSet::new(),
        }
    }

    /// Number of `(id, value)` pairs learned so far.
    pub fn known_count(&self) -> usize {
        self.known.len()
    }

    fn learn(&mut self, pair: PairMsg) -> bool {
        if self.known.contains_key(&pair.id) {
            return false;
        }
        self.known.insert(pair.id, pair.value);
        if self.queued.insert(pair.id) {
            self.outq.push_back(pair);
        }
        true
    }

    fn maybe_decide(&mut self, ctx: &mut Context<'_, PairMsg>) {
        if ctx.decided().is_none() && self.known.len() == self.n {
            let min = *self.known.values().min().expect("n > 0");
            ctx.decide(min);
        }
    }

    fn maybe_send(&mut self, ctx: &mut Context<'_, PairMsg>) {
        if ctx.is_busy() {
            return;
        }
        if let Some(pair) = self.outq.pop_front() {
            ctx.broadcast(pair);
        }
    }
}

impl Process for FloodGather {
    type Msg = PairMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, PairMsg>) {
        let own = PairMsg {
            id: ctx.id(),
            value: self.input,
        };
        self.learn(own);
        self.maybe_decide(ctx);
        self.maybe_send(ctx);
    }

    fn on_receive(&mut self, msg: PairMsg, ctx: &mut Context<'_, PairMsg>) {
        self.learn(msg);
        self.maybe_decide(ctx);
        self.maybe_send(ctx);
    }

    fn on_ack(&mut self, ctx: &mut Context<'_, PairMsg>) {
        self.maybe_send(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_consensus;

    fn run(
        topo: Topology,
        inputs: &[Value],
        scheduler: impl Scheduler + 'static,
    ) -> (Sim<FloodGather>, RunReport) {
        let n = topo.len();
        let iv = inputs.to_vec();
        let mut sim = SimBuilder::new(topo, |s| FloodGather::new(iv[s.index()], n))
            .scheduler(scheduler)
            .message_id_budget(1)
            .build();
        let report = sim.run();
        (sim, report)
    }

    #[test]
    fn decides_minimum_on_clique() {
        let inputs = [4, 2, 9];
        let (_, report) = run(Topology::clique(3), &inputs, SynchronousScheduler::new(1));
        let check = check_consensus(&inputs, &report, &[]);
        check.assert_ok();
        assert_eq!(check.decided, Some(2));
    }

    #[test]
    fn works_on_multihop_topologies() {
        for seed in 0..8 {
            let topo = Topology::random_connected(12, 0.15, seed);
            let inputs: Vec<Value> = (0..12).map(|i| (i as u64) % 2).collect();
            let (_, report) = run(topo, &inputs, RandomScheduler::new(3, seed));
            let check = check_consensus(&inputs, &report, &[]);
            assert!(check.ok(), "seed {seed}: {:?}", check.violation);
            assert_eq!(check.decided, Some(0));
        }
    }

    #[test]
    fn hub_relays_theta_n_pairs_on_a_star() {
        // The bottleneck: the hub must forward almost every pair one
        // message at a time.
        let n = 20;
        let inputs: Vec<Value> = (0..n as u64).map(|i| i % 2).collect();
        let (sim, report) = run(Topology::star(n), &inputs, SynchronousScheduler::new(1));
        assert!(report.all_decided());
        let hub_broadcasts = sim.metrics().per_slot_broadcasts[0];
        assert!(
            hub_broadcasts >= (n as u64) - 1,
            "hub sent only {hub_broadcasts} broadcasts"
        );
        // Decision time scales with n, not diameter (D = 2 here).
        assert!(report.max_decision_time().unwrap() >= Time(n as u64 - 2));
    }

    #[test]
    fn singleton_decides_immediately() {
        let (_, report) = run(
            Topology::from_edges(1, &[]),
            &[7],
            SynchronousScheduler::new(1),
        );
        let check = check_consensus(&[7], &report, &[]);
        check.assert_ok();
        assert_eq!(report.max_decision_time(), Some(Time(0)));
    }
}
