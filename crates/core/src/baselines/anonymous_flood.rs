//! `SyncFloodMin`: the anonymous algorithm behind the Theorem 3.3 and
//! Theorem 3.10 demonstrations.
//!
//! Each node floods the *set of values it has seen* (two bits — no ids
//! anywhere, making the algorithm anonymous) for a fixed number of
//! broadcast rounds, then decides the minimum value seen. Under the
//! synchronous scheduler, information travels one hop per round, so
//! `rounds >= D` makes the algorithm correct on every network of
//! diameter at most `D` *under that scheduler*.
//!
//! Theorem 3.3 shows no anonymous algorithm can be correct on **all**
//! schedulers and networks of a known size and diameter: in Network A
//! of Figure 1 (with the bridge node silenced for `t` steps) this
//! algorithm's executions inside the two gadgets are indistinguishable
//! from the uniform-input executions in Network B, so the gadgets
//! decide their own inputs — violating agreement (experiment E5).
//!
//! Run with `rounds < floor(D/2)` under the maximum-delay scheduler, it
//! also demonstrates the Theorem 3.10 time bound: a node that decides
//! before `floor(D/2) * F_ack` has provably not heard from the far half
//! of a line, and the partition argument produces disagreement
//! (experiment E4).

use amacl_model::prelude::*;

/// The set of binary values seen, as a two-bit mask. Carries no ids.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ValueMask(pub u8);

impl ValueMask {
    /// Mask containing only `value`.
    pub fn of(value: Value) -> Self {
        assert!(value <= 1, "SyncFloodMin is binary");
        ValueMask(1 << value)
    }

    /// Union of two masks.
    pub fn union(self, other: ValueMask) -> ValueMask {
        ValueMask(self.0 | other.0)
    }

    /// The minimum value present.
    ///
    /// # Panics
    ///
    /// Panics on an empty mask.
    pub fn min_value(self) -> Value {
        if self.0 & 1 != 0 {
            0
        } else if self.0 & 2 != 0 {
            1
        } else {
            panic!("empty value mask")
        }
    }
}

impl Payload for ValueMask {
    fn id_count(&self) -> usize {
        0 // anonymous: no ids, ever
    }
}

/// An anonymous flooding node that decides after a fixed number of its
/// own broadcast rounds complete.
#[derive(Clone, Debug)]
pub struct SyncFloodMin {
    seen: ValueMask,
    rounds_left: u64,
}

impl SyncFloodMin {
    /// Creates a node with a binary input that will decide after
    /// `rounds` of its own broadcasts are acknowledged.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0` or the input is not binary.
    pub fn new(input: Value, rounds: u64) -> Self {
        assert!(rounds > 0, "need at least one round");
        Self {
            seen: ValueMask::of(input),
            rounds_left: rounds,
        }
    }

    /// The current seen-set (state fingerprint for the
    /// indistinguishability checks of experiment E5).
    pub fn seen(&self) -> ValueMask {
        self.seen
    }

    /// Rounds remaining before the decision.
    pub fn rounds_left(&self) -> u64 {
        self.rounds_left
    }
}

impl Process for SyncFloodMin {
    type Msg = ValueMask;

    fn on_start(&mut self, ctx: &mut Context<'_, ValueMask>) {
        ctx.broadcast(self.seen);
    }

    fn on_receive(&mut self, msg: ValueMask, _ctx: &mut Context<'_, ValueMask>) {
        self.seen = self.seen.union(msg);
    }

    fn on_ack(&mut self, ctx: &mut Context<'_, ValueMask>) {
        self.rounds_left -= 1;
        if self.rounds_left == 0 {
            ctx.decide(self.seen.min_value());
        } else {
            ctx.broadcast(self.seen);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_consensus;

    fn run(
        topo: Topology,
        inputs: &[Value],
        rounds: u64,
        scheduler: impl Scheduler + 'static,
    ) -> RunReport {
        let iv = inputs.to_vec();
        let mut sim = SimBuilder::new(topo, |s| SyncFloodMin::new(iv[s.index()], rounds))
            .scheduler(scheduler)
            .message_id_budget(0) // proves anonymity mechanically
            .build();
        sim.run()
    }

    #[test]
    fn correct_on_lines_with_enough_rounds() {
        // rounds = D suffices under the synchronous scheduler.
        for n in [2usize, 5, 9] {
            let d = (n - 1) as u64;
            let inputs: Vec<Value> = (0..n).map(|i| (i % 2) as Value).collect();
            let report = run(Topology::line(n), &inputs, d, SynchronousScheduler::new(1));
            let check = check_consensus(&inputs, &report, &[]);
            check.assert_ok();
            assert_eq!(check.decided, Some(0));
        }
    }

    #[test]
    fn uniform_inputs_decide_that_value() {
        let inputs = vec![1, 1, 1, 1];
        let report = run(Topology::ring(4), &inputs, 2, SynchronousScheduler::new(1));
        let check = check_consensus(&inputs, &report, &[]);
        check.assert_ok();
        assert_eq!(check.decided, Some(1));
    }

    #[test]
    fn decides_exactly_at_round_budget() {
        let inputs = vec![0, 1, 1];
        let report = run(
            Topology::clique(3),
            &inputs,
            5,
            SynchronousScheduler::new(1),
        );
        assert_eq!(report.max_decision_time(), Some(Time(5)));
    }

    #[test]
    fn too_few_rounds_violates_agreement_on_a_line() {
        // The eager configuration: 2 rounds on a diameter-8 line with
        // split inputs. Endpoints decide before hearing the far half —
        // the Theorem 3.10 partition argument in action.
        let n = 9;
        let inputs: Vec<Value> = (0..n).map(|i| if i < n / 2 { 0 } else { 1 }).collect();
        let report = run(Topology::line(n), &inputs, 2, MaxDelayScheduler::new(3));
        let check = check_consensus(&inputs, &report, &[]);
        assert!(!check.agreement, "expected the partition violation");
    }

    #[test]
    fn mask_operations() {
        assert_eq!(ValueMask::of(0).min_value(), 0);
        assert_eq!(ValueMask::of(1).min_value(), 1);
        assert_eq!(ValueMask::of(1).union(ValueMask::of(0)).min_value(), 0);
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn non_binary_rejected() {
        SyncFloodMin::new(2, 1);
    }
}
