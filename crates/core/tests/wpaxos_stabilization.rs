//! Integration tests for wPAXOS's stabilization structure — the
//! skeleton of Lemma 4.5's liveness argument:
//!
//! 1. the leader election service stabilizes network-wide to the
//!    maximum id within `O(D * F_ack)`;
//! 2. once it has, the tree rooted at the leader completes (correct
//!    shortest-path distances at every node) within another
//!    `O(D * F_ack)`;
//! 3. after the change service quiesces, the leader generates only
//!    `Θ(1)` further proposals before deciding.

use amacl_core::harness::alternating_inputs;
use amacl_core::verify::check_consensus;
use amacl_core::wpaxos::{wpaxos_node, WpaxosConfig, WpaxosNode};
use amacl_model::ids::NodeId;
use amacl_model::prelude::*;

fn build(topo: Topology, scoped: bool) -> Sim<WpaxosNode> {
    let n = topo.len();
    let inputs = alternating_inputs(n);
    let cfg = if scoped {
        WpaxosConfig::new(n).with_leader_scoped_changes()
    } else {
        WpaxosConfig::new(n)
    };
    SimBuilder::new(topo, move |s| WpaxosNode::new(inputs[s.index()], cfg))
        .scheduler(SynchronousScheduler::new(1))
        .stop_when_all_decided(false)
        .build()
}

#[test]
fn leader_election_stabilizes_within_diameter_rounds() {
    // Under the synchronous scheduler (F_ack = 1), the max id floods at
    // one hop per round... except that Algorithm 5 multiplexes one
    // leader message per broadcast, so a small constant slack per hop
    // is allowed. We check 3 * D + 3.
    for topo in [
        Topology::line(12),
        Topology::grid(5, 4),
        Topology::ring(14),
        Topology::random_connected(16, 0.15, 3),
    ] {
        let n = topo.len();
        let d = topo.diameter() as u64;
        let max_id = NodeId(n as u64 - 1);
        let mut sim = build(topo, false);
        sim.run_until(Time(3 * d + 3));
        for i in 0..n {
            assert_eq!(
                sim.process(Slot(i)).omega(),
                Some(max_id),
                "slot {i} not stabilized by 3D+3 rounds (D={d})"
            );
        }
    }
}

#[test]
fn leader_tree_matches_bfs_distances_after_stabilization() {
    for topo in [
        Topology::line(10),
        Topology::grid(4, 4),
        Topology::random_connected(14, 0.2, 9),
    ] {
        let n = topo.len();
        let d = topo.diameter() as u64;
        let leader_slot = Slot(n - 1); // ids == slots, max id wins
        let bfs = topo.bfs_distances(leader_slot);
        let mut sim = build(topo, false);
        // Generous stabilization window: leaders flood, then the
        // leader-priority tree completes.
        sim.run_until(Time(8 * d + 8));
        let leader_id = NodeId(n as u64 - 1);
        for (i, &want) in bfs.iter().enumerate() {
            assert_eq!(
                sim.process(Slot(i)).dist_to(leader_id),
                Some(want),
                "slot {i}: wrong tree distance to the leader"
            );
        }
    }
}

#[test]
fn tree_distances_never_undershoot_bfs() {
    // Safety of the Bellman-Ford refinement: at *any* point in any
    // execution, recorded distances are lower-bounded by the true
    // shortest paths (they only ever converge down to them).
    for seed in 0..6u64 {
        let topo = Topology::random_connected(12, 0.2, seed);
        let n = topo.len();
        let inputs = alternating_inputs(n);
        let mut sim = SimBuilder::new(topo.clone(), |s| wpaxos_node(inputs[s.index()], n))
            .scheduler(RandomScheduler::new(4, seed))
            .stop_when_all_decided(false)
            .build();
        for checkpoint in [5u64, 20, 60, 200] {
            sim.run_until(Time(checkpoint));
            for root in 0..n {
                let bfs = topo.bfs_distances(Slot(root));
                for (i, &lower) in bfs.iter().enumerate() {
                    if let Some(dist) = sim.process(Slot(i)).dist_to(NodeId(root as u64)) {
                        assert!(
                            dist >= lower,
                            "seed {seed} t={checkpoint}: slot {i} claims dist {dist} < bfs {lower} to {root}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn leader_proposal_count_is_constant_after_quiescence() {
    // With the leader-scoped change trigger, the number of proposals
    // the eventual leader starts is tiny and independent of n — the
    // Θ(1)-after-GST property (Lemma 4.5).
    //
    // The post-decision window is bounded (2000 lockstep rounds ≫ the
    // O(D * F_ack) decision time on a star): running the helper's
    // stop_when_all_decided(false) build to the engine's default
    // 10M-tick horizon proves nothing more and used to cost ~70 s of
    // wall clock — the full-horizon variant lives on behind
    // `#[ignore]` below.
    for n in [6usize, 12, 24] {
        let topo = Topology::star(n);
        let mut sim = build(topo, true);
        sim.run_until(Time(2000));
        assert!(
            sim.all_alive_decided(),
            "n={n}: undecided after 2000 rounds"
        );
        let leader = sim.process(Slot(n - 1));
        assert!(
            leader.proposals_started() <= 6,
            "n={n}: leader started {} proposals",
            leader.proposals_started()
        );
    }
}

#[test]
#[ignore = "full 10M-tick horizon takes over a minute; the 2000-round smoke variant is tier-1"]
fn leader_proposal_count_is_constant_over_the_full_horizon() {
    for n in [6usize, 12, 24] {
        let topo = Topology::star(n);
        let mut sim = build(topo, true);
        let report = sim.run();
        assert!(sim.all_alive_decided(), "n={n}: {report:?}");
        let leader = sim.process(Slot(n - 1));
        assert!(
            leader.proposals_started() <= 6,
            "n={n}: leader started {} proposals",
            leader.proposals_started()
        );
    }
}

#[test]
fn total_proposals_bounded_by_change_updates() {
    // Every proposal traces back to a change notification with a
    // 2-proposal budget (the Lemma 4.4 accounting).
    for seed in 0..5u64 {
        let n = 10;
        let topo = Topology::random_connected(n, 0.25, seed);
        let inputs = alternating_inputs(n);
        let mut sim = SimBuilder::new(topo, |s| wpaxos_node(inputs[s.index()], n))
            .scheduler(RandomScheduler::new(3, seed))
            .build();
        let report = sim.run();
        assert!(report.all_decided());
        for i in 0..n {
            let node = sim.process(Slot(i));
            assert!(
                node.proposals_started() <= 2 * node.stats().change_updates,
                "slot {i}: {} proposals from {} change updates",
                node.proposals_started(),
                node.stats().change_updates
            );
        }
    }
}

#[test]
fn decisions_agree_between_scoped_and_literal_change_triggers() {
    // The optimization changes performance, never the decision
    // properties.
    for seed in 0..5u64 {
        let topo = Topology::random_connected(9, 0.2, seed);
        let inputs = alternating_inputs(9);
        for scoped in [false, true] {
            let cfg = if scoped {
                WpaxosConfig::new(9).with_leader_scoped_changes()
            } else {
                WpaxosConfig::new(9)
            };
            let iv = inputs.clone();
            let mut sim = SimBuilder::new(topo.clone(), |s| WpaxosNode::new(iv[s.index()], cfg))
                .scheduler(RandomScheduler::new(4, seed))
                .build();
            let report = sim.run();
            let check = check_consensus(&inputs, &report, &[]);
            assert!(
                check.ok(),
                "seed {seed} scoped={scoped}: {:?}",
                check.violation
            );
        }
    }
}

#[test]
fn multi_valued_inputs_work() {
    // The implementation accepts arbitrary u64 values (the paper's
    // binary restriction strengthens its lower bounds; the upper bound
    // logic is value-agnostic).
    let inputs: Vec<Value> = vec![17, 3, 99, 1_000_000, 3, 42];
    let iv = inputs.clone();
    let mut sim = SimBuilder::new(Topology::ring(6), |s| wpaxos_node(iv[s.index()], 6))
        .scheduler(RandomScheduler::new(5, 7))
        .build();
    let report = sim.run();
    let check = check_consensus(&inputs, &report, &[]);
    check.assert_ok();
    assert!(inputs.contains(&check.decided.unwrap()));
}
