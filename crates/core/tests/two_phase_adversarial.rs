//! Scripted adversarial schedules exercising the case analysis in the
//! proof of Theorem 4.1, plus randomized stress over the schedule
//! space.

use amacl_core::two_phase::{TpStage, TpStatus, TwoPhase};
use amacl_core::verify::check_consensus;
use amacl_model::prelude::*;

fn run_scripted(inputs: &[Value], sched: ScriptedScheduler) -> (Sim<TwoPhase>, RunReport) {
    let iv = inputs.to_vec();
    let mut sim = SimBuilder::new(Topology::clique(inputs.len()), |s| {
        TwoPhase::new(iv[s.index()])
    })
    .scheduler(sched)
    .message_id_budget(1)
    .build();
    let report = sim.run();
    (sim, report)
}

#[test]
fn proof_case_1_witness_forces_waiting() {
    // Case 1 of the proof: v receives a message from u before v
    // finishes its phase-2 broadcast, so u lands on v's witness list
    // and v must wait for (and obey) u's decided(0) status.
    //
    // Schedule: u (slot 0, input 0) completes phase 1 quickly; v
    // (slot 1, input 1) receives u's phase-1 message before its own
    // slow phase-1 broadcast completes, making v bivalent with
    // u ∈ W_v.
    let sched = ScriptedScheduler::new(1)
        .delay(Slot(0), 0, 1)
        .delay(Slot(0), 1, 4)
        .delay(Slot(1), 0, 2)
        .delay(Slot(1), 1, 2);
    let inputs = [0, 1];
    let (sim, report) = run_scripted(&inputs, sched);
    let check = check_consensus(&inputs, &report, &[]);
    check.assert_ok();
    assert_eq!(check.decided, Some(0), "v must adopt u's decided(0)");
    assert_eq!(sim.process(Slot(0)).status(), Some(TpStatus::Decided(0)));
    assert_eq!(sim.process(Slot(1)).status(), Some(TpStatus::Bivalent));
    assert!(sim
        .process(Slot(1))
        .witnesses()
        .contains(&sim.id_of(Slot(0))));
}

#[test]
fn proof_case_2_cannot_happen() {
    // Case 2 of the proof argues by contradiction that a decided(0)
    // node u and a bivalent v with u ∉ W_v cannot coexist: if v never
    // heard u before finishing phase 2, then u received v's bivalent
    // phase-2 message during its own phase 1 — which would have made u
    // bivalent. Verify the invariant over many random schedules:
    // whenever some node has status decided(0), every bivalent node
    // either has it as a witness or decides 0 anyway.
    for seed in 0..80u64 {
        let n = 2 + (seed as usize % 5);
        let inputs: Vec<Value> = (0..n).map(|i| ((i as u64 + seed) % 2) as Value).collect();
        let iv = inputs.clone();
        let mut sim = SimBuilder::new(Topology::clique(n), |s| TwoPhase::new(iv[s.index()]))
            .scheduler(RandomScheduler::new(6, seed))
            .build();
        let report = sim.run();
        let check = check_consensus(&inputs, &report, &[]);
        assert!(check.ok(), "seed {seed}: {:?}", check.violation);

        let deciders: Vec<usize> = (0..n)
            .filter(|&i| sim.process(Slot(i)).status() == Some(TpStatus::Decided(0)))
            .collect();
        if deciders.is_empty() {
            continue;
        }
        for i in 0..n {
            let p = sim.process(Slot(i));
            if p.status() == Some(TpStatus::Bivalent) {
                let has_witness = deciders
                    .iter()
                    .any(|&u| p.witnesses().contains(&sim.id_of(Slot(u))));
                let decided_zero = report.decisions[i].unwrap().value == 0;
                assert!(
                    has_witness || decided_zero,
                    "seed {seed}: bivalent node {i} escaped the decided(0) evidence"
                );
            }
        }
    }
}

#[test]
fn all_bivalent_defaults_to_one() {
    // When everyone sees both values in phase 1 (the synchronous
    // schedule with mixed inputs), all statuses are bivalent and the
    // default value 1 wins.
    let inputs = [0, 1, 0, 1];
    let iv = inputs.to_vec();
    let mut sim = SimBuilder::new(Topology::clique(4), |s| TwoPhase::new(iv[s.index()]))
        .scheduler(SynchronousScheduler::new(1))
        .build();
    let report = sim.run();
    for i in 0..4 {
        assert_eq!(sim.process(Slot(i)).status(), Some(TpStatus::Bivalent));
    }
    let check = check_consensus(&inputs, &report, &[]);
    check.assert_ok();
    assert_eq!(check.decided, Some(1));
}

#[test]
fn decided_one_statuses_are_obeyed() {
    // Symmetric to the decided(0) flow: a fast all-1 observer chooses
    // decided(1); since no decided(0) exists, everyone decides 1.
    let sched = ScriptedScheduler::new(2)
        .delay(Slot(2), 0, 1) // the input-1 node races
        .delay(Slot(2), 1, 1);
    let inputs = [1, 1, 1, 0];
    // Give the input-0 node the slowest first broadcast so the racer
    // cannot see the 0.
    let sched = sched.delay(Slot(3), 0, 8);
    let (sim, report) = run_scripted(&inputs, sched);
    let check = check_consensus(&inputs, &report, &[]);
    check.assert_ok();
    assert_eq!(check.decided, Some(1));
    assert_eq!(sim.process(Slot(2)).status(), Some(TpStatus::Decided(1)));
}

#[test]
fn stages_progress_monotonically() {
    // Pause mid-execution and observe the stage machine.
    let iv = [0, 1, 1];
    let mut sim = SimBuilder::new(Topology::clique(3), |s| TwoPhase::new(iv[s.index()]))
        .scheduler(SynchronousScheduler::new(4))
        .build();
    // Before anything happens: everyone is in phase 1.
    for i in 0..3 {
        assert_eq!(sim.process(Slot(i)).stage(), TpStage::Phase1);
    }
    sim.run_until(Time(4)); // first round: phase-1 acks
    for i in 0..3 {
        assert_ne!(sim.process(Slot(i)).stage(), TpStage::Phase1);
    }
    let report = sim.run();
    assert!(report.all_decided());
    for i in 0..3 {
        assert_eq!(sim.process(Slot(i)).stage(), TpStage::Done);
    }
}

#[test]
fn skewed_per_node_delays_never_break_agreement() {
    // Heavily asymmetric scripted schedules: node k's phase-i broadcast
    // takes (k * 7 + i * 3) % 13 + 1 ticks.
    for shift in 0..20u64 {
        let n = 5;
        let mut sched = ScriptedScheduler::new(1);
        for k in 0..n as u64 {
            for b in 0..2u64 {
                sched = sched.delay(Slot(k as usize), b, (k * 7 + b * 3 + shift) % 13 + 1);
            }
        }
        let inputs: Vec<Value> = (0..n).map(|i| ((i as u64 + shift) % 2) as Value).collect();
        let (_, report) = run_scripted(&inputs, sched);
        let check = check_consensus(&inputs, &report, &[]);
        assert!(check.ok(), "shift {shift}: {:?}", check.violation);
    }
}
