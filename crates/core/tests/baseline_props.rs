//! Property tests for the baseline algorithms — including the premises
//! the lower-bound demonstrations lean on (Lemma 3.8's "correct on
//! every line", Lemma 3.5's "terminates deciding the uniform input").

use amacl_core::baselines::anonymous_flood::SyncFloodMin;
use amacl_core::baselines::flood_gather::FloodGather;
use amacl_core::baselines::quiesce::IdFloodQuiesce;
use amacl_core::verify::check_consensus;
use amacl_model::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Lemma 3.8's premise: the quiescence algorithm (no knowledge of
    /// n) is correct on *every* line length under the synchronous
    /// scheduler, for every uniform input — with one threshold derived
    /// from a single diameter bound.
    #[test]
    fn quiesce_correct_on_all_lines_up_to_bound(
        n in 1usize..12,
        b in 0u64..2,
    ) {
        let d_bound = 12u64;
        let quiet = 2 * d_bound;
        let inputs = vec![b; n];
        let iv = inputs.clone();
        let mut sim = SimBuilder::new(Topology::line(n.max(1)), |s| {
            IdFloodQuiesce::new(iv[s.index()], quiet)
        })
        .scheduler(SynchronousScheduler::new(1))
        .message_id_budget(1)
        .build();
        let report = sim.run();
        let check = check_consensus(&inputs, &report, &[]);
        prop_assert!(check.ok(), "{:?}", check.violation);
        prop_assert_eq!(check.decided, Some(b));
    }

    /// Quiescence with mixed inputs still satisfies consensus on lines
    /// (everyone converges on the global minimum before quiescing).
    #[test]
    fn quiesce_mixed_inputs_on_lines(
        n in 2usize..10,
        input_bits in 0u64..1024,
    ) {
        let inputs: Vec<Value> = (0..n).map(|i| (input_bits >> i) & 1).collect();
        let iv = inputs.clone();
        let mut sim = SimBuilder::new(Topology::line(n), |s| {
            IdFloodQuiesce::new(iv[s.index()], 2 * n as u64 + 4)
        })
        .scheduler(SynchronousScheduler::new(1))
        .build();
        let report = sim.run();
        let check = check_consensus(&inputs, &report, &[]);
        prop_assert!(check.ok(), "{:?}", check.violation);
        prop_assert_eq!(check.decided, Some(*inputs.iter().min().unwrap()));
    }

    /// Lemma 3.5's premise: the anonymous algorithm with `rounds >= D`
    /// terminates on any connected graph of diameter `<= D` under the
    /// synchronous scheduler, deciding its uniform input.
    #[test]
    fn anonymous_flood_correct_at_diameter_rounds(
        n in 2usize..16,
        seed in 0u64..10_000,
        b in 0u64..2,
    ) {
        let topo = Topology::random_connected(n, 0.2, seed);
        let d = topo.diameter() as u64;
        let inputs = vec![b; n];
        let mut sim = SimBuilder::new(topo, |_| SyncFloodMin::new(b, d.max(1)))
            .scheduler(SynchronousScheduler::new(1))
            .message_id_budget(0)
            .build();
        let report = sim.run();
        let check = check_consensus(&inputs, &report, &[]);
        prop_assert!(check.ok(), "{:?}", check.violation);
        prop_assert_eq!(check.decided, Some(b));
    }

    /// Anonymous flooding with mixed inputs and enough rounds decides
    /// the minimum under the synchronous scheduler.
    #[test]
    fn anonymous_flood_mixed_inputs(
        n in 2usize..14,
        seed in 0u64..10_000,
        input_bits in 0u64..16_384,
    ) {
        let topo = Topology::random_connected(n, 0.2, seed);
        let d = (topo.diameter() as u64).max(1);
        let inputs: Vec<Value> = (0..n).map(|i| (input_bits >> i) & 1).collect();
        let iv = inputs.clone();
        let mut sim = SimBuilder::new(topo, |s| SyncFloodMin::new(iv[s.index()], d))
            .scheduler(SynchronousScheduler::new(1))
            .message_id_budget(0)
            .build();
        let report = sim.run();
        let check = check_consensus(&inputs, &report, &[]);
        prop_assert!(check.ok(), "{:?}", check.violation);
        prop_assert_eq!(check.decided, Some(*inputs.iter().min().unwrap()));
    }

    /// Flood-gather's message complexity: every node broadcasts at most
    /// n pair-messages (one per learned id), so total broadcasts are at
    /// most n^2 — and at least n (everyone sends its own).
    #[test]
    fn flood_gather_message_complexity_bounds(
        n in 1usize..14,
        seed in 0u64..10_000,
    ) {
        let topo = Topology::random_connected(n, 0.25, seed);
        let inputs: Vec<Value> = (0..n).map(|i| (i % 2) as Value).collect();
        let iv = inputs.clone();
        let mut sim = SimBuilder::new(topo, |s| FloodGather::new(iv[s.index()], n))
            .scheduler(RandomScheduler::new(4, seed))
            .stop_when_all_decided(false)
            .build();
        let report = sim.run();
        let check = check_consensus(&inputs, &report, &[]);
        prop_assert!(check.ok(), "{:?}", check.violation);
        prop_assert!(report.metrics.broadcasts >= n as u64 - u64::from(n == 1));
        prop_assert!(
            report.metrics.broadcasts <= (n * n) as u64,
            "broadcasts {} above n^2",
            report.metrics.broadcasts
        );
    }
}

#[test]
fn quiesce_learns_all_ids_before_deciding_on_lines() {
    // Supporting detail for the E6 narrative: on an honest line run the
    // algorithm has every id by decision time.
    for n in [2usize, 5, 8] {
        let inputs = vec![1; n];
        let iv = inputs.clone();
        let mut sim = SimBuilder::new(Topology::line(n), |s| {
            IdFloodQuiesce::new(iv[s.index()], 2 * n as u64)
        })
        .scheduler(SynchronousScheduler::new(1))
        .build();
        let report = sim.run();
        assert!(report.all_decided());
        for i in 0..n {
            assert_eq!(sim.process(Slot(i)).known_ids(), n, "slot {i}");
        }
    }
}
