//! # `amacl` — Consensus with an Abstract MAC Layer
//!
//! A full reproduction of Calvin Newport, *Consensus with an Abstract
//! MAC Layer* (PODC 2014): the model, both consensus algorithms, all
//! four lower-bound constructions, the baselines the paper argues
//! against, and a threaded runtime backing the paper's deployability
//! claim.
//!
//! This crate re-exports the workspace members:
//!
//! * [`model`] — the abstract MAC layer model: topologies (including
//!   the Figure 1 and Figure 2 worst-case constructions), the
//!   `Process` trait, and a deterministic discrete-event simulator with
//!   adversarial schedulers and crash injection.
//! * [`algorithms`] — Two-Phase Consensus (single-hop, `O(F_ack)`),
//!   wPAXOS (multihop, `O(D * F_ack)`), baselines, and the randomized
//!   Ben-Or extension.
//! * [`lowerbounds`] — the paper's four impossibility/lower-bound
//!   proofs as executable, mechanically-checked demonstrations.
//! * [`runtime`] — the same algorithms on real threads and channels.
//! * [`checker`] — a bounded exhaustive model checker that covers the
//!   *entire* scheduler space of small instances, proving the
//!   algorithms correct for those networks and rediscovering the
//!   paper's crash impossibility as concrete violating schedules.
//!
//! ## Quickstart
//!
//! ```
//! use amacl::algorithms::harness::{alternating_inputs, run_two_phase};
//! use amacl::model::prelude::*;
//!
//! // Five nodes, single hop, mixed inputs, adversarial random delays.
//! let run = run_two_phase(&alternating_inputs(5), RandomScheduler::new(8, 42));
//! run.check.assert_ok(); // agreement + validity + termination
//! assert!(run.decision_ticks() <= 4 * 8); // O(F_ack), constant in n
//! ```

#![forbid(unsafe_code)]

pub use amacl_checker as checker;
pub use amacl_core as algorithms;
pub use amacl_lowerbounds as lowerbounds;
pub use amacl_model as model;
pub use amacl_runtime as runtime;
