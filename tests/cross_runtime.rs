//! Experiment E9: the same `Process` implementations on the threaded
//! MAC runtime, cross-validated against the simulator.

use std::time::Duration;

use amacl::algorithms::extensions::ben_or::BenOr;
use amacl::algorithms::two_phase::TwoPhase;
use amacl::algorithms::wpaxos::wpaxos_node;
use amacl::model::prelude::*;
use amacl::runtime::{MacRuntime, RuntimeConfig};

fn cfg(seed: u64) -> RuntimeConfig {
    RuntimeConfig {
        max_jitter: Duration::from_micros(250),
        seed,
        timeout: Duration::from_secs(30),
        crashes: Vec::new(),
    }
}

#[test]
fn two_phase_agrees_on_threads() {
    for seed in 0..3 {
        let rt = MacRuntime::new(Topology::clique(6), cfg(seed));
        let report = rt.run(|s| TwoPhase::new((s.index() % 2) as Value));
        assert!(report.all_decided, "seed {seed}: {:?}", report.decisions);
        assert_eq!(
            report.decided_values().len(),
            1,
            "seed {seed}: disagreement {:?}",
            report.decisions
        );
    }
}

#[test]
fn two_phase_validity_on_threads() {
    // Uniform inputs must decide that value even under thread racing.
    for v in [0u64, 1] {
        let rt = MacRuntime::new(Topology::clique(5), cfg(v + 10));
        let report = rt.run(|_| TwoPhase::new(v));
        assert!(report.all_decided);
        assert_eq!(report.decided_values(), vec![v]);
    }
}

#[test]
fn wpaxos_agrees_on_threads_multihop() {
    for (seed, topo) in [
        (0u64, Topology::line(6)),
        (1, Topology::grid(3, 3)),
        (2, Topology::star(8)),
        (3, Topology::random_connected(9, 0.25, 4)),
    ] {
        let n = topo.len();
        let rt = MacRuntime::new(topo, cfg(seed));
        let report = rt.run(|s| wpaxos_node((s.index() % 2) as Value, n));
        assert!(report.all_decided, "seed {seed}: {:?}", report.decisions);
        assert_eq!(
            report.decided_values().len(),
            1,
            "seed {seed}: disagreement {:?}",
            report.decisions
        );
    }
}

#[test]
fn ben_or_agrees_on_threads() {
    let n = 5;
    let rt = MacRuntime::new(Topology::clique(n), cfg(42));
    let report = rt.run(|s| BenOr::new((s.index() % 2) as Value, n));
    assert!(report.all_decided, "{:?}", report.decisions);
    assert_eq!(report.decided_values().len(), 1);
}

#[test]
fn simulator_and_runtime_agree_on_validity() {
    // Same algorithm, same uniform input, both substrates: both must
    // decide exactly that input.
    let n = 6;
    let mut sim = SimBuilder::new(Topology::clique(n), |_| TwoPhase::new(1))
        .scheduler(RandomScheduler::new(5, 9))
        .build();
    let sim_report = sim.run();
    assert_eq!(sim_report.decided_values(), vec![1]);

    let rt = MacRuntime::new(Topology::clique(n), cfg(9));
    let rt_report = rt.run(|_| TwoPhase::new(1));
    assert_eq!(rt_report.decided_values(), vec![1]);
}
