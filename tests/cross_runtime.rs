//! Experiment E9: the same `Process` implementations on the threaded
//! MAC runtime, cross-validated against the simulator.

use std::time::Duration;

use amacl::algorithms::extensions::ben_or::BenOr;
use amacl::algorithms::two_phase::TwoPhase;
use amacl::algorithms::wpaxos::wpaxos_node;
use amacl::model::prelude::*;
use amacl::runtime::{MacRuntime, RuntimeConfig};

fn cfg(seed: u64) -> RuntimeConfig {
    RuntimeConfig {
        max_jitter: Duration::from_micros(250),
        seed,
        timeout: Duration::from_secs(30),
        crashes: Vec::new(),
    }
}

#[test]
fn two_phase_agrees_on_threads() {
    for seed in 0..3 {
        let rt = MacRuntime::new(Topology::clique(6), cfg(seed));
        let report = rt.run(|s| TwoPhase::new((s.index() % 2) as Value));
        assert!(report.all_decided, "seed {seed}: {:?}", report.decisions);
        assert_eq!(
            report.decided_values().len(),
            1,
            "seed {seed}: disagreement {:?}",
            report.decisions
        );
    }
}

#[test]
fn two_phase_validity_on_threads() {
    // Uniform inputs must decide that value even under thread racing.
    for v in [0u64, 1] {
        let rt = MacRuntime::new(Topology::clique(5), cfg(v + 10));
        let report = rt.run(|_| TwoPhase::new(v));
        assert!(report.all_decided);
        assert_eq!(report.decided_values(), vec![v]);
    }
}

#[test]
fn wpaxos_agrees_on_threads_multihop() {
    for (seed, topo) in [
        (0u64, Topology::line(6)),
        (1, Topology::grid(3, 3)),
        (2, Topology::star(8)),
        (3, Topology::random_connected(9, 0.25, 4)),
    ] {
        let n = topo.len();
        let rt = MacRuntime::new(topo, cfg(seed));
        let report = rt.run(|s| wpaxos_node((s.index() % 2) as Value, n));
        assert!(report.all_decided, "seed {seed}: {:?}", report.decisions);
        assert_eq!(
            report.decided_values().len(),
            1,
            "seed {seed}: disagreement {:?}",
            report.decisions
        );
    }
}

#[test]
fn ben_or_agrees_on_threads() {
    let n = 5;
    let rt = MacRuntime::new(Topology::clique(n), cfg(42));
    let report = rt.run(|s| BenOr::new((s.index() % 2) as Value, n));
    assert!(report.all_decided, "{:?}", report.decisions);
    assert_eq!(report.decided_values().len(), 1);
}

#[test]
fn simulator_and_runtime_agree_on_validity() {
    // Same algorithm, same uniform input, both substrates: both must
    // decide exactly that input.
    let n = 6;
    let mut sim = SimBuilder::new(Topology::clique(n), |_| TwoPhase::new(1))
        .scheduler(RandomScheduler::new(5, 9))
        .build();
    let sim_report = sim.run();
    assert_eq!(sim_report.decided_values(), vec![1]);

    let rt = MacRuntime::new(Topology::clique(n), cfg(9));
    let rt_report = rt.run(|_| TwoPhase::new(1));
    assert_eq!(rt_report.decided_values(), vec![1]);
}

#[test]
fn both_backends_run_the_same_process_through_the_mac_layer_trait() {
    // The unification claim, end to end: one Process type, one init
    // closure, two backends behind `&mut dyn MacLayer`, outcomes
    // diffed by the checker's conformance cross-check.
    use amacl::checker::{cross_check, CrossCheckConfig};

    let n = 6;
    let mut sim = SimBackend::new(
        Topology::clique(n),
        BackendSched::Random { f_ack: 5, seed: 9 },
    );
    let mut rt = MacRuntime::new(Topology::clique(n), cfg(9));
    let backends: [&mut dyn MacLayer<TwoPhase>; 2] = [&mut sim, &mut rt];
    let mut reports = Vec::new();
    for backend in backends {
        let report = backend.execute(&mut |_s| TwoPhase::new(1));
        assert!(
            report.all_decided,
            "{}: {:?}",
            report.backend, report.decisions
        );
        reports.push(report);
    }
    assert_eq!(reports[0].backend, "sim");
    assert_eq!(reports[1].backend, "threads");

    // Uniform inputs: the decision is input-determined, so demand
    // bit-identical per-slot decisions across the backends.
    let outcome = cross_check(
        &mut sim,
        &mut rt,
        &mut |_s| TwoPhase::new(1),
        &[1; 6],
        CrossCheckConfig {
            expect_identical_decisions: true,
            check_validity: true,
        },
    );
    outcome.assert_ok();
    assert_eq!(outcome.divergence, None);
}

#[test]
fn wpaxos_cross_check_multihop_through_the_trait() {
    use amacl::checker::{cross_check, CrossCheckConfig};
    use amacl::model::prelude::Value;

    for (seed, topo) in [(0u64, Topology::line(5)), (1, Topology::grid(3, 2))] {
        let n = topo.len();
        let inputs: Vec<Value> = (0..n as u64).map(|i| i % 2).collect();
        let iv = inputs.clone();
        let mut sim = SimBackend::new(topo.clone(), BackendSched::Random { f_ack: 4, seed });
        let mut rt = MacRuntime::new(topo, cfg(seed));
        let outcome = cross_check(
            &mut sim,
            &mut rt,
            &mut |s| wpaxos_node(iv[s.index()], n),
            &inputs,
            CrossCheckConfig {
                expect_identical_decisions: false,
                check_validity: true,
            },
        );
        outcome.assert_ok();
        assert!(outcome.left.agreement_value().is_some(), "seed {seed}");
        assert!(outcome.right.agreement_value().is_some(), "seed {seed}");
    }
}
