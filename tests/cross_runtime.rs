//! Experiment E9: the same `Process` implementations on the threaded
//! MAC runtime, cross-validated against the simulator.

use std::time::Duration;

use amacl::algorithms::extensions::ben_or::BenOr;
use amacl::algorithms::two_phase::TwoPhase;
use amacl::algorithms::wpaxos::wpaxos_node;
use amacl::model::prelude::*;
use amacl::runtime::{MacRuntime, RuntimeConfig};

fn cfg(seed: u64) -> RuntimeConfig {
    RuntimeConfig {
        max_jitter: Duration::from_micros(250),
        seed,
        timeout: Duration::from_secs(30),
        ..RuntimeConfig::default()
    }
}

#[test]
fn two_phase_agrees_on_threads() {
    for seed in 0..3 {
        let rt = MacRuntime::new(Topology::clique(6), cfg(seed));
        let report = rt.run(|s| TwoPhase::new((s.index() % 2) as Value));
        assert!(report.all_decided, "seed {seed}: {:?}", report.decisions);
        assert_eq!(
            report.decided_values().len(),
            1,
            "seed {seed}: disagreement {:?}",
            report.decisions
        );
    }
}

#[test]
fn two_phase_validity_on_threads() {
    // Uniform inputs must decide that value even under thread racing.
    for v in [0u64, 1] {
        let rt = MacRuntime::new(Topology::clique(5), cfg(v + 10));
        let report = rt.run(|_| TwoPhase::new(v));
        assert!(report.all_decided);
        assert_eq!(report.decided_values(), vec![v]);
    }
}

#[test]
fn wpaxos_agrees_on_threads_multihop() {
    for (seed, topo) in [
        (0u64, Topology::line(6)),
        (1, Topology::grid(3, 3)),
        (2, Topology::star(8)),
        (3, Topology::random_connected(9, 0.25, 4)),
    ] {
        let n = topo.len();
        let rt = MacRuntime::new(topo, cfg(seed));
        let report = rt.run(|s| wpaxos_node((s.index() % 2) as Value, n));
        assert!(report.all_decided, "seed {seed}: {:?}", report.decisions);
        assert_eq!(
            report.decided_values().len(),
            1,
            "seed {seed}: disagreement {:?}",
            report.decisions
        );
    }
}

#[test]
fn ben_or_agrees_on_threads() {
    let n = 5;
    let rt = MacRuntime::new(Topology::clique(n), cfg(42));
    let report = rt.run(|s| BenOr::new((s.index() % 2) as Value, n));
    assert!(report.all_decided, "{:?}", report.decisions);
    assert_eq!(report.decided_values().len(), 1);
}

#[test]
fn simulator_and_runtime_agree_on_validity() {
    // Same algorithm, same uniform input, both substrates: both must
    // decide exactly that input.
    let n = 6;
    let mut sim = SimBuilder::new(Topology::clique(n), |_| TwoPhase::new(1))
        .scheduler(RandomScheduler::new(5, 9))
        .build();
    let sim_report = sim.run();
    assert_eq!(sim_report.decided_values(), vec![1]);

    let rt = MacRuntime::new(Topology::clique(n), cfg(9));
    let rt_report = rt.run(|_| TwoPhase::new(1));
    assert_eq!(rt_report.decided_values(), vec![1]);
}

#[test]
fn both_backends_run_the_same_process_through_the_mac_layer_trait() {
    // The unification claim, end to end: one Process type, one init
    // closure, two backends behind `&mut dyn MacLayer`, outcomes
    // diffed by the checker's conformance cross-check.
    use amacl::checker::{cross_check, CrossCheckConfig};

    let n = 6;
    let mut sim = SimBackend::new(
        Topology::clique(n),
        BackendSched::Random { f_ack: 5, seed: 9 },
    );
    let mut rt = MacRuntime::new(Topology::clique(n), cfg(9));
    let backends: [&mut dyn MacLayer<TwoPhase>; 2] = [&mut sim, &mut rt];
    let mut reports = Vec::new();
    for backend in backends {
        let report = backend.execute(&mut |_s| TwoPhase::new(1));
        assert!(
            report.all_decided,
            "{}: {:?}",
            report.backend, report.decisions
        );
        reports.push(report);
    }
    assert_eq!(reports[0].backend, "sim");
    assert_eq!(reports[1].backend, "threads");

    // Uniform inputs: the decision is input-determined, so demand
    // bit-identical per-slot decisions across the backends.
    let outcome = cross_check(
        &mut sim,
        &mut rt,
        &mut |_s| TwoPhase::new(1),
        &[1; 6],
        CrossCheckConfig {
            expect_identical_decisions: true,
            check_validity: true,
        },
    );
    outcome.assert_ok();
    assert_eq!(outcome.divergence, None);
}

#[test]
fn timed_crash_agrees_slot_for_slot_across_backends() {
    // A timed crash (`CrashSpec::AtTime`) routed through BOTH
    // backends: the engine takes it on its virtual clock, the
    // threaded ether on a wall-clock deadline. With uniform inputs
    // the instance is input-determined, so the decision vectors must
    // agree slot for slot: the crashed node (killed before it can be
    // acked on either substrate) decides nowhere, every survivor
    // decides the uniform input everywhere.
    use amacl::checker::{cross_check, CrossCheckConfig};
    use amacl::model::sim::conformance::compare_reports;
    use amacl::runtime::TimedCrash;

    let n = 5;
    let crash = CrashSpec::AtTime {
        slot: Slot(0),
        time: Time(1),
    };
    let mut sim = SimBackend::new(
        Topology::clique(n),
        BackendSched::Random { f_ack: 4, seed: 6 },
    )
    .seed(6)
    .crash_plan(CrashPlan::new(vec![crash]));
    let mut config = cfg(6);
    // Tick length zero: the ether fires the deadline before admitting
    // any broadcast, the wall-clock analogue of dying at t=1 when
    // every ack needs >= 2 more ticks.
    config.timed_crashes = vec![TimedCrash {
        slot: 0,
        at: Duration::ZERO,
    }];
    let mut rt = MacRuntime::new(Topology::clique(n), config);

    let outcome = cross_check(
        &mut sim,
        &mut rt,
        &mut |_s| TwoPhase::new(1),
        &[1; 5],
        CrossCheckConfig {
            expect_identical_decisions: true,
            check_validity: true,
        },
    );
    outcome.assert_ok();
    assert_eq!(
        compare_reports(&outcome.left, &outcome.right),
        None,
        "decision vectors diverged"
    );
    assert_eq!(outcome.left.decisions[0], None, "crashed node decided");
    for slot in 1..n {
        assert_eq!(outcome.left.decisions[slot], Some(1));
        assert_eq!(outcome.right.decisions[slot], Some(1));
    }
}

#[test]
fn wpaxos_cross_check_multihop_through_the_trait() {
    use amacl::checker::{cross_check, CrossCheckConfig};
    use amacl::model::prelude::Value;

    for (seed, topo) in [(0u64, Topology::line(5)), (1, Topology::grid(3, 2))] {
        let n = topo.len();
        let inputs: Vec<Value> = (0..n as u64).map(|i| i % 2).collect();
        let iv = inputs.clone();
        let mut sim = SimBackend::new(topo.clone(), BackendSched::Random { f_ack: 4, seed });
        let mut rt = MacRuntime::new(topo, cfg(seed));
        let outcome = cross_check(
            &mut sim,
            &mut rt,
            &mut |s| wpaxos_node(iv[s.index()], n),
            &inputs,
            CrossCheckConfig {
                expect_identical_decisions: false,
                check_validity: true,
            },
        );
        outcome.assert_ok();
        assert!(outcome.left.agreement_value().is_some(), "seed {seed}");
        assert!(outcome.right.agreement_value().is_some(), "seed {seed}");
    }
}
