//! Cross-crate property tests: agreement, validity, and termination for
//! every algorithm, over randomized topologies, inputs, schedulers, and
//! id assignments.

use amacl::algorithms::extensions::ben_or::BenOr;
use amacl::algorithms::harness::{run_flood_gather, run_two_phase, run_wpaxos, run_wpaxos_with};
use amacl::algorithms::verify::check_consensus;
use amacl::algorithms::wpaxos::{wpaxos_node, WpaxosConfig};
use amacl::model::ids::NodeId;
use amacl::model::prelude::*;
use proptest::prelude::*;

/// A random connected topology drawn from several families.
fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (2usize..20).prop_map(Topology::clique),
        (2usize..24).prop_map(Topology::line),
        (3usize..24).prop_map(Topology::ring),
        (2usize..24).prop_map(Topology::star),
        ((2usize..6), (2usize..5)).prop_map(|(w, h)| Topology::grid(w, h)),
        ((4usize..20), (0u64..1000)).prop_map(|(n, s)| Topology::random_connected(n, 0.15, s)),
        ((4usize..20), (0u64..1000)).prop_map(|(n, s)| Topology::random_tree(n, s)),
    ]
}

fn arb_inputs(n: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..2, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn two_phase_satisfies_consensus(
        n in 1usize..24,
        inputs_seed in 0u64..1_000_000,
        sched_seed in 0u64..1_000_000,
        f_ack in 1u64..12,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(inputs_seed);
        let inputs: Vec<Value> = (0..n).map(|_| rng.gen_range(0..2)).collect();
        let run = run_two_phase(&inputs, RandomScheduler::new(f_ack, sched_seed));
        prop_assert!(run.check.ok(), "{:?}", run.check.violation);
        // Theorem 4.1: O(F_ack), with the constant bounded by 4.
        prop_assert!(run.decision_ticks() <= 4 * f_ack);
    }

    #[test]
    fn wpaxos_satisfies_consensus(
        topo in arb_topology(),
        sched_seed in 0u64..1_000_000,
        f_ack in 1u64..8,
    ) {
        let n = topo.len();
        let inputs: Vec<Value> = (0..n).map(|i| (i % 2) as Value).collect();
        let run = run_wpaxos(topo, &inputs, RandomScheduler::new(f_ack, sched_seed));
        prop_assert!(run.check.ok(), "{:?}", run.check.violation);
    }

    #[test]
    fn wpaxos_satisfies_consensus_with_arbitrary_inputs(
        (topo, inputs) in arb_topology().prop_flat_map(|t| {
            let n = t.len();
            (Just(t), arb_inputs(n))
        }),
        sched_seed in 0u64..1_000_000,
    ) {
        let run = run_wpaxos(topo, &inputs, RandomScheduler::new(3, sched_seed));
        prop_assert!(run.check.ok(), "inputs {inputs:?}: {:?}", run.check.violation);
        prop_assert!(inputs.contains(&run.check.decided.unwrap()));
    }

    #[test]
    fn wpaxos_ablations_satisfy_consensus(
        topo in arb_topology(),
        sched_seed in 0u64..1_000_000,
        which in 0usize..4,
    ) {
        let n = topo.len();
        let cfg = match which {
            0 => WpaxosConfig::new(n).without_aggregation(),
            1 => WpaxosConfig::new(n).without_leader_priority(),
            2 => WpaxosConfig::new(n).flooded_responses(),
            _ => WpaxosConfig::new(n).with_leader_scoped_changes(),
        };
        let inputs: Vec<Value> = (0..n).map(|i| (i % 2) as Value).collect();
        let run = run_wpaxos_with(topo, &inputs, cfg, RandomScheduler::new(3, sched_seed));
        prop_assert!(run.check.ok(), "config {which}: {:?}", run.check.violation);
    }

    #[test]
    fn tree_gather_satisfies_consensus_and_decides_min(
        topo in arb_topology(),
        sched_seed in 0u64..1_000_000,
    ) {
        use amacl::algorithms::tree_gather::run_tree_gather;
        let n = topo.len();
        let inputs: Vec<Value> = (0..n).map(|i| ((i + 1) % 3) as Value).collect();
        let min = *inputs.iter().min().unwrap();
        let run = run_tree_gather(topo, &inputs, RandomScheduler::new(4, sched_seed));
        prop_assert!(run.check.ok(), "{:?}", run.check.violation);
        prop_assert_eq!(run.check.decided, Some(min));
    }

    #[test]
    fn flood_gather_satisfies_consensus_and_decides_min(
        topo in arb_topology(),
        sched_seed in 0u64..1_000_000,
    ) {
        let n = topo.len();
        let inputs: Vec<Value> = (0..n).map(|i| ((i + 1) % 2) as Value).collect();
        let min = *inputs.iter().min().unwrap();
        let run = run_flood_gather(topo, &inputs, RandomScheduler::new(4, sched_seed));
        prop_assert!(run.check.ok(), "{:?}", run.check.violation);
        prop_assert_eq!(run.check.decided, Some(min));
    }

    #[test]
    fn wpaxos_is_insensitive_to_id_assignment(
        n in 2usize..14,
        perm_seed in 0u64..1_000_000,
        sched_seed in 0u64..1_000_000,
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(perm_seed);
        let mut ids: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
        ids.shuffle(&mut rng);
        let inputs: Vec<Value> = (0..n).map(|i| (i % 2) as Value).collect();
        let iv = inputs.clone();
        let mut sim = SimBuilder::new(Topology::random_connected(n, 0.2, perm_seed), |s| {
            wpaxos_node(iv[s.index()], n)
        })
        .ids(ids)
        .scheduler(RandomScheduler::new(4, sched_seed))
        .message_id_budget(10)
        .build();
        let report = sim.run();
        let check = check_consensus(&inputs, &report, &[]);
        prop_assert!(check.ok(), "{:?}", check.violation);
    }

    #[test]
    fn ben_or_survives_one_crash(
        n in 3usize..9,
        sched_seed in 0u64..1_000_000,
        crash_slot_raw in 0usize..9,
        crash_nth in 0u64..3,
        delivered in 0usize..3,
    ) {
        let crash_slot = crash_slot_raw % n;
        let delivered = delivered.min(n - 2);
        let inputs: Vec<Value> = (0..n).map(|i| (i % 2) as Value).collect();
        let iv = inputs.clone();
        let mut sim = SimBuilder::new(Topology::clique(n), |s| BenOr::new(iv[s.index()], n))
            .scheduler(RandomScheduler::new(3, sched_seed))
            .crashes(CrashPlan::new(vec![CrashSpec::MidBroadcast {
                slot: Slot(crash_slot),
                nth_broadcast: crash_nth,
                delivered,
            }]))
            .seed(sched_seed)
            .build();
        let report = sim.run();
        let mut crashed = vec![false; n];
        crashed[crash_slot] = true;
        let check = check_consensus(&inputs, &report, &crashed);
        prop_assert!(check.ok(), "{:?}", check.violation);
    }

    #[test]
    fn wpaxos_message_sizes_are_constant(
        topo in arb_topology(),
        sched_seed in 0u64..1_000_000,
    ) {
        let n = topo.len();
        let inputs: Vec<Value> = (0..n).map(|i| (i % 2) as Value).collect();
        let iv = inputs.clone();
        let mut sim = SimBuilder::new(topo, |s| wpaxos_node(iv[s.index()], n))
            .scheduler(RandomScheduler::new(4, sched_seed))
            .message_id_budget(10) // panics on violation
            .build();
        let report = sim.run();
        prop_assert!(report.all_decided());
        prop_assert!(report.metrics.max_message_ids <= 10);
    }
}

#[test]
fn two_phase_under_every_builtin_scheduler() {
    let inputs = [0u64, 1, 1, 0, 1];
    for (name, run) in [
        ("sync", run_two_phase(&inputs, SynchronousScheduler::new(3))),
        (
            "max_delay",
            run_two_phase(&inputs, MaxDelayScheduler::new(5)),
        ),
        ("random", run_two_phase(&inputs, RandomScheduler::new(7, 3))),
    ] {
        assert!(run.check.ok(), "{name}: {:?}", run.check.violation);
    }
}

#[test]
fn wpaxos_lemma_4_2_invariant_across_many_seeds() {
    use std::collections::BTreeMap;
    for seed in 0..25u64 {
        let n = 4 + (seed as usize % 8);
        let topo = Topology::random_connected(n, 0.25, seed);
        let inputs: Vec<Value> = (0..n).map(|i| (i % 2) as Value).collect();
        let iv = inputs.clone();
        let mut sim = SimBuilder::new(topo, |s| wpaxos_node(iv[s.index()], n))
            .scheduler(RandomScheduler::new(5, seed.wrapping_mul(131)))
            .build();
        sim.run();
        let mut generated = BTreeMap::new();
        let mut counted = BTreeMap::new();
        for i in 0..n {
            let stats = sim.process(Slot(i)).stats();
            for (k, v) in &stats.affirmative_generated {
                *generated.entry(*k).or_insert(0u64) += v;
            }
            for (k, v) in &stats.responses_counted {
                if k.1.is_affirmative() {
                    *counted.entry(*k).or_insert(0u64) += v;
                }
            }
        }
        for (k, c) in &counted {
            let a = generated.get(k).copied().unwrap_or(0);
            assert!(c <= &a, "seed {seed}: c({k:?}) = {c} > a(p) = {a}");
        }
    }
}
