//! End-to-end tests for the extension modules added on top of the
//! paper: multi-valued consensus (bitwise composition), the
//! failure-detector escape from Theorem 3.2, and cross-validation of
//! the simulator against the exhaustive checker.

use amacl::algorithms::extensions::fd_paxos::FdPaxos;
use amacl::algorithms::multivalued::BitwiseTwoPhase;
use amacl::algorithms::verify::check_consensus;
use amacl::checker::{ExploreConfig, Explorer};
use amacl::model::prelude::*;
use amacl::runtime::{MacRuntime, RuntimeConfig, RuntimeCrash};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bitwise multi-valued consensus: agreement, validity (the agreed
    /// value is a proposal — the property naive per-bit voting loses),
    /// and termination, over random widths, inputs, and schedules.
    #[test]
    fn bitwise_satisfies_multivalued_consensus(
        n in 1usize..10,
        bits in 1u32..12,
        inputs_seed in 0u64..1_000_000,
        sched_seed in 0u64..1_000_000,
        f_ack in 1u64..8,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(inputs_seed);
        let top = (1u64 << bits) - 1;
        let inputs: Vec<Value> = (0..n).map(|_| rng.gen_range(0..=top)).collect();
        let iv = inputs.clone();
        let mut sim = SimBuilder::new(Topology::clique(n), |s| {
            BitwiseTwoPhase::new(iv[s.index()], bits)
        })
        .scheduler(RandomScheduler::new(f_ack, sched_seed))
        .message_id_budget(1)
        .build();
        let report = sim.run();
        let check = check_consensus(&inputs, &report, &[]);
        prop_assert!(check.ok(), "{:?}", check.violation);
        prop_assert!(inputs.contains(&check.decided.unwrap()));
        // O(B * F_ack): generous constant covering the skew +
        // pending-adoption worst cases.
        let ticks = report.max_decision_time().unwrap().ticks();
        prop_assert!(
            ticks <= 6 * bits as u64 * f_ack,
            "ticks {ticks} above 6*B*F_ack"
        );
    }

    /// FD-guided Paxos satisfies consensus under any minority crash
    /// set, with crashes at adversarial mid-broadcast points.
    #[test]
    fn fd_paxos_survives_any_minority_crash_set(
        n in 3usize..9,
        crash_mask in 0u64..256,
        sched_seed in 0u64..1_000_000,
        nth in 0u64..3,
    ) {
        let crash_slots: Vec<usize> =
            (0..n).filter(|i| (crash_mask >> i) & 1 == 1).collect();
        prop_assume!(2 * crash_slots.len() < n);
        let inputs: Vec<Value> = (0..n).map(|i| (i as u64) % 3).collect();
        let iv = inputs.clone();
        let specs: Vec<CrashSpec> = crash_slots
            .iter()
            .map(|&s| CrashSpec::MidBroadcast {
                slot: Slot(s),
                nth_broadcast: nth,
                delivered: s % (n - 1),
            })
            .collect();
        let mut sim = SimBuilder::new(Topology::clique(n), |s| {
            FdPaxos::new(iv[s.index()], n, 4)
        })
        .scheduler(RandomScheduler::new(4, sched_seed))
        .crashes(CrashPlan::new(specs))
        .message_id_budget(3)
        .max_time(Time(500_000))
        .build();
        let report = sim.run();
        let crashed: Vec<bool> = (0..n).map(|i| crash_slots.contains(&i)).collect();
        let check = check_consensus(&inputs, &report, &crashed);
        prop_assert!(check.ok(), "crashes {crash_slots:?}: {:?}", check.violation);
    }

    /// The explorer's terminal states agree with simulator runs: any
    /// decision the simulator produces for an instance must be among
    /// the decisions reachable in the explorer's terminal states.
    #[test]
    fn simulator_decisions_are_reachable_in_the_explorer(
        inputs in proptest::collection::vec(0u64..2, 2..=3),
        sched_seed in 0u64..1_000_000,
    ) {
        use amacl::algorithms::two_phase::TwoPhase;
        use std::collections::BTreeSet;

        let n = inputs.len();
        let procs: Vec<TwoPhase> = inputs.iter().map(|&v| TwoPhase::new(v)).collect();
        let explorer = Explorer::new(Topology::clique(n), procs, inputs.clone(), 0);
        let out = explorer.run(ExploreConfig {
            max_violations: usize::MAX,
            ..ExploreConfig::default()
        });
        prop_assert!(out.verified());

        // All schedules agree by Theorem 4.1; collect the set of
        // decision values over every schedule explored... which must
        // include whatever a concrete simulator run produced.
        let iv = inputs.clone();
        let mut sim = SimBuilder::new(Topology::clique(n), |s| TwoPhase::new(iv[s.index()]))
            .scheduler(RandomScheduler::new(4, sched_seed))
            .message_id_budget(1)
            .build();
        let report = sim.run();
        let sim_value = report.decisions[0].unwrap().value;
        let explorer_values: BTreeSet<Value> = inputs.iter().copied().collect();
        prop_assert!(explorer_values.contains(&sim_value));
    }
}

#[test]
fn bitwise_runs_unmodified_on_the_threaded_runtime() {
    // The deployability claim extends to the new algorithm: the same
    // Process implementation runs on real threads and channels.
    let n = 6;
    let rt = MacRuntime::new(
        Topology::clique(n),
        RuntimeConfig {
            max_jitter: Duration::from_micros(200),
            seed: 9,
            timeout: Duration::from_secs(30),
            ..RuntimeConfig::default()
        },
    );
    let inputs: Vec<Value> = (0..n as u64).map(|i| i * 3 % 16).collect();
    let iv = inputs.clone();
    let report = rt.run(|s| BitwiseTwoPhase::new(iv[s.index()], 4));
    assert!(report.all_decided);
    let decided = report.decided_values();
    assert_eq!(decided.len(), 1, "agreement on the runtime");
    assert!(inputs.contains(&decided[0]), "validity on the runtime");
}

#[test]
fn fd_paxos_survives_a_crash_on_the_threaded_runtime() {
    // Deterministic crash tolerance on real threads: node 0 (the
    // initial leader) dies partway through its second broadcast.
    let n = 5;
    let rt = MacRuntime::new(
        Topology::clique(n),
        RuntimeConfig {
            max_jitter: Duration::from_micros(200),
            seed: 4,
            timeout: Duration::from_secs(30),
            crashes: vec![RuntimeCrash {
                slot: 0,
                nth_broadcast: 1,
                delivered: 2,
            }],
            ..RuntimeConfig::default()
        },
    );
    let inputs: Vec<Value> = (0..n as u64).map(|i| i + 20).collect();
    let iv = inputs.clone();
    // Real-time clock: microsecond ticks, so start the detector at a
    // millisecond rather than the simulator's 4-tick default.
    let report = rt.run(|s| FdPaxos::new(iv[s.index()], n, 1_000));
    let survivors: Vec<Option<Value>> = report.decisions[1..].to_vec();
    assert!(
        survivors.iter().all(|d| d.is_some()),
        "all survivors decide: {survivors:?}"
    );
    let decided = report.decided_values();
    assert_eq!(decided.len(), 1, "agreement among survivors");
    assert!(inputs.contains(&decided[0]), "validity");
}

#[test]
fn fd_paxos_decision_is_stable_across_schedulers() {
    // With ids fixed and no crashes, the eventual leader is the
    // smallest id; its input should win under gentle schedules.
    let n = 5;
    let inputs: Vec<Value> = vec![7, 1, 2, 3, 4];
    for f_ack in [1u64, 3] {
        let iv = inputs.clone();
        let mut sim = SimBuilder::new(Topology::clique(n), |s| FdPaxos::new(iv[s.index()], n, 8))
            .scheduler(SynchronousScheduler::new(f_ack))
            .message_id_budget(3)
            .max_time(Time(500_000))
            .build();
        let report = sim.run();
        let check = check_consensus(&inputs, &report, &[]);
        check.assert_ok();
        assert_eq!(check.decided, Some(7), "leader 0's input wins");
    }
}

#[test]
fn bitwise_one_bit_agrees_with_two_phase_on_identical_schedules() {
    // With B = 1 the bitwise protocol is Algorithm 1 with candidate
    // payloads; under the deterministic synchronous scheduler both
    // decide at the same tick.
    use amacl::algorithms::harness::{alternating_inputs, run_two_phase};
    let inputs = alternating_inputs(6);
    let tp = run_two_phase(&inputs, SynchronousScheduler::new(2));
    tp.check.assert_ok();

    let iv = inputs.clone();
    let mut sim = SimBuilder::new(Topology::clique(6), |s| {
        BitwiseTwoPhase::new(iv[s.index()], 1)
    })
    .scheduler(SynchronousScheduler::new(2))
    .message_id_budget(1)
    .build();
    let report = sim.run();
    check_consensus(&inputs, &report, &[]).assert_ok();
    assert_eq!(
        report.max_decision_time().unwrap().ticks(),
        tp.decision_ticks()
    );
}
