//! Meta-tests: the simulator's own traces always satisfy the model
//! contract, as judged by the *independent* conformance checker — for
//! every algorithm, scheduler family, and crash plan.

use amacl::algorithms::extensions::ben_or::BenOr;
use amacl::algorithms::tree_gather::TreeGather;
use amacl::algorithms::two_phase::TwoPhase;
use amacl::algorithms::wpaxos::wpaxos_node;
use amacl::model::prelude::*;
use amacl::model::sim::conformance::check_trace;
use amacl::model::topo::unreliable::UnreliableOverlay;
use proptest::prelude::*;

fn conformant_two_phase(n: usize, scheduler: impl Scheduler + 'static, f_ack: u64) {
    let mut sim = SimBuilder::new(Topology::clique(n), |s| {
        TwoPhase::new((s.index() % 2) as Value)
    })
    .scheduler(scheduler)
    .trace(true)
    .stop_when_all_decided(false)
    .build();
    sim.run();
    let report = check_trace(sim.topology(), sim.trace(), Some(f_ack), None);
    report.assert_ok();
    assert!(report.broadcasts > 0 && report.acks > 0);
}

#[test]
fn engine_traces_conform_for_two_phase() {
    conformant_two_phase(5, SynchronousScheduler::new(3), 3);
    conformant_two_phase(5, MaxDelayScheduler::new(7), 7);
    for seed in 0..10 {
        conformant_two_phase(4, RandomScheduler::new(5, seed), 5);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_traces_conform_for_wpaxos(
        n in 2usize..10,
        seed in 0u64..100_000,
        f_ack in 1u64..8,
    ) {
        let topo = Topology::random_connected(n, 0.2, seed);
        let mut sim = SimBuilder::new(topo, |s| wpaxos_node((s.index() % 2) as Value, n))
            .scheduler(RandomScheduler::new(f_ack, seed))
            .trace(true)
            .build();
        sim.run();
        let report = check_trace(sim.topology(), sim.trace(), Some(f_ack), None);
        prop_assert!(report.ok(), "first violation: {:?}", report.violations.first());
    }

    #[test]
    fn engine_traces_conform_under_crashes(
        n in 3usize..9,
        seed in 0u64..100_000,
        crash_slot in 0usize..9,
        delivered in 0usize..3,
    ) {
        let crash_slot = crash_slot % n;
        let delivered = delivered.min(n - 2);
        let mut sim = SimBuilder::new(Topology::clique(n), |s| {
            BenOr::new((s.index() % 2) as Value, n)
        })
        .scheduler(RandomScheduler::new(4, seed))
        .crashes(CrashPlan::new(vec![CrashSpec::MidBroadcast {
            slot: Slot(crash_slot),
            nth_broadcast: 1,
            delivered,
        }]))
        .seed(seed)
        .trace(true)
        .build();
        sim.run();
        let report = check_trace(sim.topology(), sim.trace(), Some(4), None);
        prop_assert!(report.ok(), "first violation: {:?}", report.violations.first());
    }

    #[test]
    fn engine_traces_conform_with_unreliable_overlay(
        seed in 0u64..100_000,
        p in 0.0f64..1.0,
    ) {
        let base = Topology::ring(8);
        let overlay = UnreliableOverlay::new(&base, &[(0, 4), (1, 5)]);
        let mut sim = SimBuilder::new(base, |s| wpaxos_node((s.index() % 2) as Value, 8))
            .scheduler(RandomScheduler::new(3, seed))
            .unreliable(overlay.clone(), p)
            .seed(seed)
            .trace(true)
            .build();
        sim.run();
        let report = check_trace(sim.topology(), sim.trace(), Some(3), Some(&overlay));
        prop_assert!(report.ok(), "first violation: {:?}", report.violations.first());
    }

    #[test]
    fn engine_traces_conform_for_tree_gather(
        n in 2usize..10,
        seed in 0u64..100_000,
    ) {
        let topo = Topology::random_connected(n, 0.25, seed);
        let mut sim = SimBuilder::new(topo, |s| TreeGather::new((s.index() % 2) as Value, n))
            .scheduler(RandomScheduler::new(4, seed))
            .trace(true)
            .build();
        sim.run();
        let report = check_trace(sim.topology(), sim.trace(), Some(4), None);
        prop_assert!(report.ok(), "first violation: {:?}", report.violations.first());
    }
}
