//! Property tests over the model substrate: topology builders,
//! scheduler plans, and engine guarantees.

use amacl::model::ids::Slot;
use amacl::model::msg::Payload;
use amacl::model::prelude::*;
use amacl::model::proc::Context;
use amacl::model::topo::gadgets::Fig1Params;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_connected_is_connected(n in 1usize..60, p in 0.0f64..0.3, seed in 0u64..10_000) {
        let t = Topology::random_connected(n, p, seed);
        prop_assert!(t.is_connected());
        prop_assert_eq!(t.len(), n);
        // At least a spanning tree's worth of edges.
        prop_assert!(t.edge_count() >= n.saturating_sub(1));
    }

    #[test]
    fn grid_diameter_formula(w in 1usize..9, h in 1usize..9) {
        let t = Topology::grid(w, h);
        prop_assert_eq!(t.diameter() as usize, (w - 1) + (h - 1));
    }

    #[test]
    fn line_and_ring_diameters(n in 3usize..40) {
        prop_assert_eq!(Topology::line(n).diameter() as usize, n - 1);
        prop_assert_eq!(Topology::ring(n).diameter() as usize, n / 2);
    }

    #[test]
    fn star_of_lines_shape(arms in 1usize..6, len in 1usize..6) {
        let t = Topology::star_of_lines(arms, len);
        prop_assert_eq!(t.len(), arms * len + 1);
        prop_assert!(t.is_connected());
        let expect = if arms >= 2 { 2 * len } else { len };
        prop_assert_eq!(t.diameter() as usize, expect);
    }

    #[test]
    fn hypercube_and_binary_tree_diameters(dim in 1usize..8, levels in 1usize..8) {
        assert_eq!(Topology::hypercube(dim).diameter() as usize, dim);
        assert_eq!(
            Topology::binary_tree(levels).diameter() as usize,
            2 * (levels - 1)
        );
    }

    #[test]
    fn caterpillar_and_lollipop_shapes(spine in 1usize..8, legs in 0usize..4, k in 2usize..8, tail in 0usize..8) {
        let cat = Topology::caterpillar(spine, legs);
        prop_assert!(cat.is_connected());
        prop_assert_eq!(cat.len(), spine * (legs + 1));
        let lol = Topology::lollipop(k, tail);
        prop_assert!(lol.is_connected());
        prop_assert_eq!(lol.len(), k + tail);
        if tail > 0 {
            prop_assert_eq!(lol.diameter() as usize, tail + 1);
        }
    }

    #[test]
    fn dual_bound_scheduler_plans_are_valid(
        f_prog in 1u64..20,
        extra in 0u64..20,
        seed in 0u64..10_000,
        degree in 0usize..10,
    ) {
        let f_ack = f_prog + extra;
        let mut s = DualBoundScheduler::new(f_prog, f_ack, seed);
        let neighbors: Vec<Slot> = (1..=degree).map(Slot).collect();
        let plan = s.plan(Time(0), Slot(0), &neighbors);
        prop_assert!(plan.validate(degree, f_ack).is_ok());
        prop_assert!(plan.receive_delays.iter().all(|&d| d <= f_prog));
    }

    #[test]
    fn fig1_params_honor_the_theorem(d2 in 4usize..40, n in 1usize..300) {
        // Theorem 3.3: for every even D >= 8 and size floor n, the
        // realized n' is >= n and within a constant factor.
        let diameter = 2 * d2; // even, >= 8
        let p = Fig1Params::for_diameter_and_size(diameter, n);
        prop_assert!(p.n_prime >= n);
        prop_assert_eq!(p.n_prime, 3 * (p.d + p.k) + 12);
        prop_assert!(p.n_prime <= 3 * n + 3 * diameter + 15);
    }

    #[test]
    fn random_scheduler_plans_are_valid(
        f_ack in 1u64..40,
        seed in 0u64..10_000,
        degree in 0usize..12,
        now in 0u64..10_000,
    ) {
        let mut s = RandomScheduler::new(f_ack, seed);
        let neighbors: Vec<Slot> = (1..=degree).map(Slot).collect();
        let plan = s.plan(Time(now), Slot(0), &neighbors);
        prop_assert!(plan.validate(degree, f_ack).is_ok());
    }

    #[test]
    fn sync_scheduler_lands_on_boundaries(round in 1u64..30, now in 0u64..500) {
        let mut s = SynchronousScheduler::new(round);
        let plan = s.plan(Time(now), Slot(0), &[Slot(1)]);
        let due = now + plan.receive_delays[0];
        prop_assert_eq!(due % round, 0, "delivery not on a boundary");
        prop_assert!(due > now);
        prop_assert!(plan.validate(1, round).is_ok());
    }

    #[test]
    fn edge_delay_scheduler_respects_release(release in 1u64..200, now in 0u64..400) {
        let cut = DirectedCut::new([Slot(0)], [Slot(1)], Time(release));
        let mut s = EdgeDelayScheduler::new(SynchronousScheduler::new(1), vec![cut]);
        let plan = s.plan(Time(now), Slot(0), &[Slot(1), Slot(2)]);
        let due_cut = now + plan.receive_delays[0];
        prop_assert!(due_cut >= release.min(now + 1).max(now + 1) || due_cut >= release);
        // The uncut neighbor is served at the next boundary.
        prop_assert_eq!(plan.receive_delays[1], 1);
        prop_assert!(plan.validate(2, s.f_ack()).is_ok());
    }
}

/// A process that floods once and counts receipts — used to check
/// engine delivery guarantees below.
struct CountAndRelay {
    relayed: bool,
    received: usize,
}

#[derive(Clone, Debug)]
struct Ping;
impl Payload for Ping {
    fn id_count(&self) -> usize {
        0
    }
}

impl Process for CountAndRelay {
    type Msg = Ping;
    fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
        if !self.relayed {
            self.relayed = true;
            ctx.broadcast(Ping);
        }
    }
    fn on_receive(&mut self, _m: Ping, ctx: &mut Context<'_, Ping>) {
        self.received += 1;
        if !self.relayed {
            self.relayed = true;
            ctx.broadcast(Ping);
        }
    }
    fn on_ack(&mut self, ctx: &mut Context<'_, Ping>) {
        if ctx.decided().is_none() {
            ctx.decide(0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_broadcast_reaches_every_neighbor_exactly_once(
        n in 2usize..16,
        p in 0.0f64..0.4,
        topo_seed in 0u64..10_000,
        sched_seed in 0u64..10_000,
        f_ack in 1u64..10,
    ) {
        // Everyone relays once => every node receives exactly
        // one message per neighbor.
        let topo = Topology::random_connected(n, p, topo_seed);
        let expected: Vec<usize> = topo.slots().map(|s| topo.degree(s)).collect();
        let mut sim = SimBuilder::new(topo, |s| CountAndRelay {
            relayed: s.index() == usize::MAX, // false for all
            received: 0,
        })
        .scheduler(RandomScheduler::new(f_ack, sched_seed))
        .stop_when_all_decided(false)
        .build();
        let report = sim.run();
        // The run drains fully (stop_when_all_decided is off), so the
        // engine reports AllDecided once the heap empties.
        prop_assert_eq!(report.outcome, RunOutcome::AllDecided);
        for (i, &want) in expected.iter().enumerate() {
            prop_assert_eq!(
                sim.process(Slot(i)).received,
                want,
                "slot {} received {} of {} neighbor messages",
                i, sim.process(Slot(i)).received, want
            );
        }
    }

    #[test]
    fn engine_is_deterministic(
        n in 2usize..12,
        seed in 0u64..10_000,
    ) {
        let run = || {
            let topo = Topology::random_connected(n, 0.2, seed);
            let mut sim = SimBuilder::new(topo, |_| CountAndRelay { relayed: false, received: 0 })
                .scheduler(RandomScheduler::new(6, seed))
                .seed(seed)
                .stop_when_all_decided(false)
                .build();
            let report = sim.run();
            (report.end_time, report.metrics.deliveries, report.metrics.broadcasts, report.metrics.acks)
        };
        prop_assert_eq!(run(), run());
    }
}
