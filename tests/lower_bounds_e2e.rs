//! End-to-end runs of all four lower-bound demonstrations (experiments
//! E4–E7), spanning the model, algorithm, and lowerbounds crates.

use amacl::algorithms::two_phase::TwoPhase;
use amacl::lowerbounds::anonymity::run_anonymity_demo;
use amacl::lowerbounds::bivalence::{lemma_3_1_extension, Explorer};
use amacl::lowerbounds::crash_demo::run_crash_demo;
use amacl::lowerbounds::step::StepMachine;
use amacl::lowerbounds::time_lb::{earliest_decision, partition_violation, Algorithm};
use amacl::lowerbounds::unknown_n::run_unknown_n_demo;
use amacl::model::topo::gadgets::Fig1;
use amacl::model::topo::kd::KdNetwork;

#[test]
fn theorem_3_2_census() {
    // Bivalent initial configuration + a critical configuration + a
    // stuck schedule: the full impossibility witness set.
    let machine = StepMachine::new(vec![TwoPhase::new(0), TwoPhase::new(1)]);
    let mut explorer = Explorer::new(1, 120);
    let result = explorer.explore(&machine);
    assert!(result.bivalent());
    assert!(result.stuck_undecided);
    assert!((0..2).any(|u| lemma_3_1_extension(&machine, u, 1, 8, 80).is_none()));

    let demo = run_crash_demo();
    assert!(!demo.with_crash.termination);
    assert!(demo.with_crash.agreement && demo.with_crash.validity);
    assert!(demo.without_crash.ok());
}

#[test]
fn theorem_3_3_full_demo() {
    let out = run_anonymity_demo(8, 30);
    assert!(out.n_prime >= 30);
    assert!(out.indistinguishable);
    assert!(!out.alpha_a.agreement);
    for check in &out.alpha_b {
        assert!(check.ok());
    }
}

#[test]
fn claim_3_4_holds_across_parameter_sweep() {
    for diameter in [8usize, 10, 12, 14, 16] {
        for n in [12usize, 30, 60, 90] {
            let fig = Fig1::for_diameter_and_size(diameter, n);
            assert_eq!(fig.network_a().len(), fig.n_prime());
            assert_eq!(fig.network_b().len(), fig.n_prime());
            assert_eq!(fig.network_a().diameter() as usize, diameter);
            assert_eq!(fig.network_b().diameter() as usize, diameter);
            assert!(fig.n_prime() >= n);
            fig.verify_lift_property().expect("property (*)");
        }
    }
}

#[test]
fn theorem_3_9_full_demo() {
    for d in [2usize, 5] {
        let out = run_unknown_n_demo(d);
        assert!(out.indistinguishable, "D={d}");
        assert_eq!(out.copy_decisions, [Some(0), Some(1)], "D={d}");
        assert!(!out.beta_d.agreement, "D={d}");
        // The construction really has diameter D.
        assert_eq!(KdNetwork::new(d).topology().diameter() as usize, d);
    }
}

#[test]
fn theorem_3_10_bound_and_violation() {
    for (d, f_ack) in [(6usize, 2u64), (10, 4)] {
        for alg in [Algorithm::Wpaxos, Algorithm::FloodGather] {
            let m = earliest_decision(alg, d, f_ack);
            assert!(m.ok, "{alg:?} D={d}");
            assert!(
                m.respects_bound(),
                "{alg:?} D={d}: earliest {} < bound {}",
                m.earliest,
                m.bound
            );
        }
    }
    let (check, _) = partition_violation(10, 3, 2);
    assert!(!check.agreement);
}
