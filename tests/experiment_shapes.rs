//! Asserts the headline experimental *shapes* the paper predicts —
//! the same series EXPERIMENTS.md records, kept honest by CI.

use amacl_bench::experiments::{e1, e13, e14, e15, e2, e3, e4};

#[test]
fn e1_two_phase_is_flat_in_n_and_linear_in_f_ack() {
    let rows = e1::series(&[2, 8, 32, 128], &[1, 8]);
    // Flat in n: same tick count at fixed F_ack.
    for f in [1u64, 8] {
        let ticks: Vec<u64> = rows
            .iter()
            .filter(|r| r.f_ack == f)
            .map(|r| r.ticks)
            .collect();
        assert!(
            ticks.windows(2).all(|w| w[0] == w[1]),
            "F_ack={f}: not flat in n: {ticks:?}"
        );
    }
    // Linear in F_ack with slope exactly 2 under the max-delay
    // adversary.
    for r in &rows {
        assert_eq!(r.ticks, 2 * r.f_ack, "n={} F_ack={}", r.n, r.f_ack);
    }
}

#[test]
fn e2_wpaxos_scales_linearly_in_diameter() {
    let rows = e2::series(2);
    let lines: Vec<&e2::Row> = rows.iter().filter(|r| r.name.starts_with("line")).collect();
    assert!(lines.len() >= 4);
    // The normalized ratio ticks/(D*F_ack) stays within a small
    // constant band across an 16x diameter range.
    let ratios: Vec<f64> = lines.iter().map(|r| r.ratio).collect();
    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().cloned().fold(0.0, f64::max);
    assert!(
        max / min < 2.0,
        "ratio drifted beyond a constant band: {ratios:?}"
    );
    // And the raw time really grows with D (sanity against a vacuous
    // ratio check).
    assert!(lines.last().unwrap().ticks > 4 * lines[0].ticks);
}

#[test]
fn e3_aggregation_beats_flooding_with_a_growing_gap() {
    let rows = e3::series(&[8, 16, 32], 2);
    for r in &rows {
        assert!(
            r.flood_ticks > r.wpaxos_ticks,
            "n={}: flooding {} not slower than wPAXOS {}",
            r.n,
            r.flood_ticks,
            r.wpaxos_ticks
        );
        assert!(
            r.flood_hub > r.wpaxos_hub,
            "n={}: hub bottleneck absent",
            r.n
        );
    }
    // The gap grows with n.
    let gap_first = rows[0].flood_ticks as f64 / rows[0].wpaxos_ticks as f64;
    let gap_last =
        rows.last().unwrap().flood_ticks as f64 / rows.last().unwrap().wpaxos_ticks as f64;
    assert!(
        gap_last > gap_first,
        "gap did not grow: {gap_first:.2} -> {gap_last:.2}"
    );
    // The leader-scoped variant is flat in n (the E8 finding).
    let scoped: Vec<u64> = rows.iter().map(|r| r.scoped_ticks).collect();
    let smin = *scoped.iter().min().unwrap() as f64;
    let smax = *scoped.iter().max().unwrap() as f64;
    assert!(
        smax / smin < 1.5,
        "leader-scoped wPAXOS not flat in n: {scoped:?}"
    );
}

#[test]
fn e4_no_correct_algorithm_beats_the_bound() {
    for row in e4::series(2) {
        assert!(
            row.wpaxos_earliest >= row.bound,
            "D={}: wPAXOS decided at {} < bound {}",
            row.d,
            row.wpaxos_earliest,
            row.bound
        );
        assert!(
            row.gather_earliest >= row.bound,
            "D={}: gather decided at {} < bound {}",
            row.d,
            row.gather_earliest,
            row.bound
        );
    }
    let (agreement, _) = e4::violation(10, 2, 2);
    assert!(!agreement, "the eager decider must get partitioned");
}

#[test]
fn e13_bitwise_is_linear_in_bits_while_wpaxos_is_flat() {
    let rows = e13::series(6, &[1, 4, 16], 2);
    // Bitwise: per-bit ratio constant (exactly 2 under the max-delay
    // adversary: two phases per bit).
    for r in &rows {
        assert_eq!(
            r.bitwise_ticks,
            2 * r.bits as u64 * r.f_ack,
            "bits={}",
            r.bits
        );
    }
    // Direct wPAXOS: identical cost at every width.
    let wp: Vec<u64> = rows.iter().map(|r| r.wpaxos_ticks).collect();
    assert!(
        wp.windows(2).all(|w| w[0] == w[1]),
        "wPAXOS not flat in bits: {wp:?}"
    );
    // The crossover: at 1 bit the composition wins; at 16 bits the
    // direct algorithm does.
    assert!(rows[0].bitwise_ticks < rows[0].wpaxos_ticks);
    assert!(rows.last().unwrap().bitwise_ticks > rows.last().unwrap().wpaxos_ticks);
}

#[test]
fn e14_fd_paxos_is_clean_at_every_minority_crash_count() {
    for row in e14::series(5, &[0, 1, 2], 6) {
        assert!(
            row.all_ok,
            "crashes={}: some run violated consensus",
            row.crashes
        );
        // Stabilization: ballot attempts stay small and bounded.
        assert!(
            row.worst_ballots <= 8,
            "crashes={}: {} ballots — leader duel did not settle",
            row.crashes,
            row.worst_ballots
        );
    }
}

#[test]
fn e15_crash_free_instances_verify_and_crashed_ones_fail() {
    for row in e15::series() {
        if row.name.contains("literal-R2") {
            assert!(!row.verified, "{}: the known bug must surface", row.name);
        } else if row.crash_budget == 0 {
            assert!(row.verified, "{}: expected full verification", row.name);
        } else {
            assert!(
                !row.verified && row.violation.is_some(),
                "{}: Theorem 3.2 demands a violating schedule",
                row.name
            );
        }
    }
}
